//! Nic-KV: the offloaded component running on the SmartNIC SoC.
//!
//! Implements §III-C/§III-D of the paper on the BlueField's (simulated)
//! ARM cores:
//!
//! * maintains the **node list** — master and slaves with their replication
//!   state and validity flags,
//! * relays initial synchronization requests to the master (Fig. 8 ①→②),
//! * performs **steady-state replication fan-out** (Fig. 9): one request
//!   from the master becomes one `WRITE_WITH_IMM` per valid slave, written
//!   from the slaves' send buffers on the NIC, optionally spread over
//!   `thread-num` ARM cores,
//! * runs **failure detection**: 1-second probes, `waiting-time` timeouts,
//!   invalid flags, `min-slaves` notifications to the master, and master
//!   failover with downgrade-on-return.

use std::collections::VecDeque;

use skv_netsim::{
    CqId, DetMap, Frame, Net, NetEvent, NodeId, QpId, SocketAddr, WcOpcode, WcStatus,
};
use skv_simcore::{Actor, ActorId, Context, CorePool, Payload, SimDuration, SimTime};
use skv_store::repl::ReplicationPosition;

use crate::channel::{Channel, ChannelMsg};
use crate::config::ClusterConfig;
use crate::cqdrain;
use crate::hotcache::{fwd_cookie, fwd_cookie_epoch, CacheStats, HotCache};
use crate::protocol::{tag, NodeMsg};
use crate::replmode::{quorum_slave_acks, ReplModeKind};

/// An entry in the node list (paper §III-C: "a node list storing the
/// corresponding relationship between the master node and the slave node
/// is maintained on the SmartNIC").
#[derive(Debug, Clone)]
pub struct NodeEntry {
    /// The node's server address.
    pub addr: SocketAddr,
    /// Whether this entry is the master.
    pub is_master: bool,
    /// Replication state as last reported.
    pub position: ReplicationPosition,
    /// The invalid flag (§III-D): cleared while the node answers probes.
    pub valid: bool,
    /// Last time this node answered a probe (or any message).
    pub last_reply: SimTime,
    /// When the oldest unanswered probe was sent (§III-D: a node is failed
    /// when a probe sent `waiting-time` ago has no reply).
    pub pending_probe_since: Option<SimTime>,
    /// Connection index, once the node has a channel to Nic-KV.
    conn: Option<usize>,
}

enum NicMsg {
    /// Probe round timer.
    ProbeTick,
    /// Fan-out work for one slave finished; send the frame now (a
    /// [`Frame`] clone — each slave's copy is a refcount bump).
    FanoutSend { conn: usize, frame: Frame },
    /// All per-slave fan-out work for one replicated write finished; post
    /// every staged WR under a single doorbell (`batch_wr_posts` mode).
    /// Each slave's WR still carries the same frame by refcount bump.
    FanoutSendBatch { conns: Vec<usize>, frame: Frame },
    /// Tracked-mode (quorum) fan-out work finished; post the write's WRs
    /// under one doorbell and arm ack tracking on their completions.
    TrackedSend { seq: u64, conns: Vec<usize> },
    /// Chain-mode per-hop work finished; post the write to its current
    /// head hop.
    ChainHop { seq: u64 },
    /// Front-end ARM work for a client-bound reply finished (a cache hit
    /// or a relayed forwarded reply); send it on the client channel now.
    CacheReply { conn: usize, frame: Frame },
    /// Front-end forwarding work for a missed/non-GET client command
    /// finished; relay the cookie-framed `FWD_CMD` to the master.
    FwdSend { cookie: u64, frame: Frame },
}

/// One outstanding forwarded client command: where its reply goes, and —
/// when the command was a single-key GET — the key whose bulk reply is a
/// cache admission candidate.
struct FwdCtx {
    conn: usize,
    key: Option<Vec<u8>>,
}

/// One in-flight tracked write (quorum or chain mode). The frame is kept
/// for retransmission until the write commits.
struct PendingWrite {
    /// Launch sequence number — the `wr_acks` / timer correlation key.
    seq: u64,
    /// Master backlog offset right *after* this write's bytes: a slave
    /// whose cumulative applied offset reaches this value holds the write.
    end_offset: u64,
    /// The replication stream frame (`[from_offset][RESP]`).
    frame: Frame,
    /// Slaves that acked this write (WR completion, `WriteAck`, or
    /// cumulative `ProgressReport` coverage). Deduplicated.
    acked: Vec<SocketAddr>,
    /// Slave acks required to commit (quorum mode; 0 in chain mode where
    /// the emptied hop list is the commit condition).
    needed: usize,
    /// Remaining chain hops, head first (chain mode; empty in quorum).
    hops: VecDeque<SocketAddr>,
    /// Whether a post to the current head hop is scheduled or awaiting
    /// its applied ack.
    hop_inflight: bool,
}

/// External control events injected by the harness. The SmartNIC SoC can
/// crash independently of its host (the degradation scenario): the host
/// keeps running, Nic-KV just disappears.
#[derive(Debug, Clone)]
pub enum NicControl {
    /// Crash the SoC (its node drops traffic; process state is lost).
    Crash,
    /// Restart the SoC. The node list is empty until the master's Hello
    /// and the slaves' re-registration polls rebuild it.
    Recover,
}

struct ConnState {
    channel: Channel,
    open: bool,
    /// Fan-out frames queued behind this channel's outstanding MR
    /// handshake. They post later, inside `Channel::on_wc`'s flush; the
    /// drain path reconciles them against `take_flushed_wrs` so the
    /// doorbell/WR statistics count every fan-out WR at actual post time
    /// (and only fan-out WRs — flushed control messages don't count).
    deferred_wrs: u64,
}

/// The Nic-KV actor.
pub struct NicKv {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    addr: SocketAddr,
    cq: Option<CqId>,
    /// The SmartNIC's ARM cores (slow; speed factor from `MachineParams`).
    cpu: CorePool,
    conns: Vec<ConnState>,
    by_qp: DetMap<QpId, usize>,
    nodes: Vec<NodeEntry>,
    probe_seq: u64,
    /// Address of a slave promoted during master failover, if any.
    promoted: Option<SocketAddr>,
    /// Round-robin cursor for thread assignment.
    fanout_cursor: usize,
    /// Whether the SoC is currently crashed.
    crashed: bool,
    /// Highest master replication offset observed in forwarded frames.
    master_offset: u64,
    /// Last `(available, lagging)` pair pushed to the master.
    last_update_sent: Option<(u32, bool)>,
    /// Statistics.
    pub stat_fanout_msgs: u64,
    /// Total per-slave sends performed.
    pub stat_fanout_sends: u64,
    /// Doorbells rung by the replication fan-out (one per `post_send` in
    /// serial mode, one per batch in `batch_wr_posts` mode).
    pub stat_doorbells: u64,
    /// WRs posted by the replication fan-out (identical in both modes —
    /// batching amortizes doorbells, not work requests).
    pub stat_wrs_posted: u64,
    /// Probes sent.
    pub stat_probes: u64,
    /// Failovers performed.
    pub stat_failovers: u64,
    /// Instants at which a node was declared failed (detection latency
    /// analysis for the `waiting-time` ablation).
    pub detections: Vec<(SimTime, SocketAddr)>,
    /// Instants at which a previously failed node was seen alive again.
    pub recoveries: Vec<(SimTime, SocketAddr)>,
    // -- tracked replication (quorum / chain modes) ------------------------
    /// Launch sequence counter for tracked writes.
    write_seq: u64,
    /// In-flight tracked writes, oldest first (offsets ascend with launch
    /// order, so commit release pops from the front).
    pending: VecDeque<PendingWrite>,
    /// Outstanding tracked WR → `(seq, slave)`; resolved by the send-side
    /// completion in the CQ drain.
    wr_acks: DetMap<(QpId, u64), (u64, SocketAddr)>,
    /// Writes waiting for a window slot (`repl_window` bounds `pending`).
    window_queue: VecDeque<Frame>,
    /// Highest backlog offset committed under the active mode.
    committed_upto: u64,
    /// Highest commit offset pushed to the master via `WriteCommitted`.
    notified_upto: u64,
    /// Tracked writes committed.
    pub stat_commits: u64,
    /// Quorum-mode retransmissions to re-registering slaves.
    pub stat_retransmits: u64,
    /// Chain-repair actions: dead hops spliced out of in-flight chains.
    pub stat_chain_repairs: u64,
    /// Chain-rejoin actions: a re-registering slave spliced back onto the
    /// tail of in-flight chains (only the writes its cumulative offset
    /// does not already cover — no overlapping window).
    pub stat_chain_rejoins: u64,
    // -- cross-mode failover (`ClusterConfig::mode_failover`) --------------
    /// The replication mode currently *in force*. Starts at
    /// `cfg.repl_mode` and diverges only under `mode_failover`: a quorum
    /// cluster that cannot assemble a write quorum degrades to the async
    /// stream, and re-promotes when enough slaves return.
    active_mode: ReplModeKind,
    /// Every mode transition `(instant, new mode)`, in order. The history
    /// checker cuts its linearizability claim at the first entry — the
    /// declared degradation point.
    pub mode_changes: Vec<(SimTime, ReplModeKind)>,
    /// Mode transitions performed (degradations + re-promotions).
    pub stat_mode_changes: u64,
    /// Highest simultaneously-valid slave count ever observed; degrading
    /// below quorum is only meaningful once a full quorum existed
    /// (otherwise cluster start-up would read as a partition).
    peak_slaves: usize,
    /// Per-commit ack sets `(end_offset, acked slaves)`, recorded only
    /// when `ClusterConfig::record_commits` is set (the quorum
    /// intersection proptest reads these).
    pub committed_acks: Vec<(u64, Vec<SocketAddr>)>,
    /// Replicated writes seen per master shard, classified by the hash
    /// slot of the command's first key (index = shard). Only populated
    /// when `num_shards > 1` — the NIC's view of how evenly the shard
    /// mapping spreads replication ingress. Exported as
    /// `shard.nic_ingress`.
    shard_ingress: Vec<u64>,
    // -- hot-key GET cache (SoC-resident front-end) ------------------------
    /// The NIC-resident hot-key cache; `None` unless
    /// `ClusterConfig::hot_cache_enabled()`.
    cache: Option<HotCache>,
    /// Cookie source for forwarded client commands (low bits; resets to 0
    /// on every SoC restart).
    fwd_seq: u64,
    /// SoC boot counter carried in every cookie's high bits — the one
    /// piece of state that survives a crash. A `FWD_REPLY` minted under an
    /// older epoch can never resolve a forward issued after the rejoin.
    fwd_epoch: u64,
    /// Replies for forwarded commands dropped because their cookie carried
    /// a stale (pre-restart) epoch.
    pub stat_fwd_stale_drops: u64,
    /// Outstanding forwarded commands by cookie.
    fwd_pending: DetMap<u64, FwdCtx>,
}

impl NicKv {
    /// Create a Nic-KV bound to `addr` on the SmartNIC SoC node.
    pub fn new(net: Net, cfg: ClusterConfig, node: NodeId, addr: SocketAddr) -> Self {
        let cores = cfg.machines.nic_cores.max(1);
        let speed = cfg.machines.nic_core_speed;
        let shard_ingress = vec![0; cfg.num_shards.max(1)];
        let cache = cfg
            .hot_cache_enabled()
            .then(|| HotCache::new(cfg.hot_cache_bytes, cfg.hot_cache_policy_kind()));
        let active_mode = cfg.repl_mode;
        NicKv {
            net,
            node,
            addr,
            cq: None,
            cpu: CorePool::new(cores, speed),
            conns: Vec::new(),
            by_qp: DetMap::new(),
            nodes: Vec::new(),
            probe_seq: 0,
            promoted: None,
            fanout_cursor: 0,
            crashed: false,
            master_offset: 0,
            last_update_sent: None,
            cfg,
            stat_fanout_msgs: 0,
            stat_fanout_sends: 0,
            stat_doorbells: 0,
            stat_wrs_posted: 0,
            stat_probes: 0,
            stat_failovers: 0,
            detections: Vec::new(),
            recoveries: Vec::new(),
            write_seq: 0,
            pending: VecDeque::new(),
            wr_acks: DetMap::new(),
            window_queue: VecDeque::new(),
            committed_upto: 0,
            notified_upto: 0,
            stat_commits: 0,
            stat_retransmits: 0,
            stat_chain_repairs: 0,
            stat_chain_rejoins: 0,
            active_mode,
            mode_changes: Vec::new(),
            stat_mode_changes: 0,
            peak_slaves: 0,
            committed_acks: Vec::new(),
            shard_ingress,
            cache,
            fwd_seq: 0,
            fwd_epoch: 0,
            stat_fwd_stale_drops: 0,
            fwd_pending: DetMap::new(),
        }
    }

    /// The replication mode currently in force (== `cfg.repl_mode` unless
    /// a `mode_failover` transition happened).
    pub fn active_mode(&self) -> ReplModeKind {
        self.active_mode
    }

    /// Cache counters and the resident byte footprint, when the hot
    /// cache is enabled.
    pub fn cache_stats(&self) -> Option<(CacheStats, usize)> {
        self.cache.as_ref().map(|c| (c.stats, c.bytes()))
    }

    /// The hot cache itself (test observability).
    pub fn hot_cache(&self) -> Option<&HotCache> {
        self.cache.as_ref()
    }

    /// The ARM core running the cache front-end: the last one, which
    /// `ClusterConfig::validate` keeps clear of sharded fan-out threads.
    fn fe_core(&self) -> usize {
        self.cfg.machines.nic_cores.max(1) - 1
    }

    /// Replication ingress per master shard (empty counts unless the
    /// cluster runs with `num_shards > 1`).
    pub fn shard_ingress(&self) -> &[u64] {
        &self.shard_ingress
    }

    /// Classify one replicated stream frame by the owning master shard
    /// (hash slot of the embedded command's first key) and bump its
    /// ingress count. A no-op at one shard, keeping the unsharded
    /// schedule's state untouched.
    fn note_shard_ingress(&mut self, frame: &Frame) {
        if self.shard_ingress.len() <= 1 {
            return;
        }
        let Some((_, body)) = crate::server::parse_stream_frame(frame) else {
            return;
        };
        use skv_store::resp::{Decoded, Resp};
        let Decoded::Frame(v, _) = Resp::decode(body) else {
            return;
        };
        let Ok(args) = v.into_command_args() else {
            return;
        };
        let shard = args.get(1).map_or(0, |key| {
            crate::protocol::slot_shard(
                crate::protocol::key_hash_slot(key),
                self.shard_ingress.len(),
            )
        });
        self.shard_ingress[shard] += 1;
    }

    /// Whether the mode *currently in force* tracks per-write acks and
    /// defers the master's client replies (quorum and chain; not the
    /// async stream, including a quorum cluster degraded into it).
    fn deferred(&self) -> bool {
        self.active_mode != ReplModeKind::Async
    }

    /// Highest backlog offset committed under the active replication mode
    /// (async never tracks commits and reports 0).
    pub fn committed_upto(&self) -> u64 {
        self.committed_upto
    }

    /// Tracked writes still awaiting their commit condition.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    fn addr_of_conn(&self, conn: usize) -> Option<SocketAddr> {
        self.nodes
            .iter()
            .find(|n| n.conn == Some(conn))
            .map(|n| n.addr)
    }

    /// The node list (for tests and reports).
    pub fn node_list(&self) -> &[NodeEntry] {
        &self.nodes
    }

    /// Currently valid slaves.
    pub fn available_slaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.is_master && n.valid)
            .count()
    }

    /// Mean ARM-core utilization so far.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        self.cpu.mean_utilization(now)
    }

    fn entry_mut(&mut self, addr: SocketAddr) -> Option<&mut NodeEntry> {
        self.nodes.iter_mut().find(|n| n.addr == addr)
    }

    fn master_conn(&self) -> Option<usize> {
        self.nodes
            .iter()
            .find(|n| n.is_master)
            .and_then(|n| n.conn)
            .filter(|&c| self.conns[c].open)
    }

    /// Send on an open connection; returns the number of RDMA WRs posted
    /// right now (0 when the message was queued behind the handshake or
    /// the channel is closed/broken — see [`Channel::send`]).
    fn send_on(
        &mut self,
        ctx: &mut Context<'_>,
        conn: usize,
        tag: u32,
        payload: impl Into<Frame>,
    ) -> usize {
        if !self.conns[conn].open {
            return 0;
        }
        let net = self.net.clone();
        let posted = self.conns[conn].channel.send(&net, ctx, tag, payload);
        if self.conns[conn].channel.broken() {
            self.close_conn(ctx, conn);
            return 0;
        }
        posted
    }

    /// Tear down a failed connection; the node it belonged to stays in the
    /// list (validity is the probe machinery's business) but loses its
    /// channel until it re-registers. Losing the *master* channel also
    /// takes the hot cache cold and fails outstanding forwards over to
    /// error replies (see [`NicKv::on_master_channel_lost`]).
    fn close_conn(&mut self, ctx: &mut Context<'_>, conn: usize) {
        if !self.conns[conn].open {
            return;
        }
        let was_master = self
            .nodes
            .iter()
            .any(|n| n.is_master && n.conn == Some(conn));
        self.conns[conn].open = false;
        // Whatever was queued behind the handshake dies with the channel;
        // forget its statistics bookkeeping too.
        self.conns[conn].deferred_wrs = 0;
        let _ = self.conns[conn].channel.take_flushed_wrs();
        if let Some(qp) = self.conns[conn].channel.qp() {
            self.net.destroy_qp(qp);
        }
        for e in &mut self.nodes {
            if e.conn == Some(conn) {
                e.conn = None;
            }
        }
        if was_master {
            self.on_master_channel_lost(ctx);
        }
    }

    /// The master channel died. Cached entries can no longer be kept
    /// coherent — a failover master may lag the stream the entries were
    /// versioned against — so the cache goes cold. Outstanding forwarded
    /// commands will never see their cookie replies; answer them with an
    /// error so closed-loop clients keep running (the same liveness a
    /// directly-connected client gets from its broken channel).
    fn on_master_channel_lost(&mut self, ctx: &mut Context<'_>) {
        if let Some(cache) = self.cache.as_mut() {
            cache.clear();
        }
        if self.fwd_pending.is_empty() {
            return;
        }
        let pending = std::mem::replace(&mut self.fwd_pending, DetMap::new());
        let err: Frame = skv_store::resp::Resp::Error("ERR master unavailable".into())
            .encode()
            .into();
        let conns: Vec<usize> = pending.iter().map(|(_, f)| f.conn).collect();
        for conn in conns {
            if self.conns[conn].open {
                self.send_on(ctx, conn, tag::REPLY, err.clone());
            }
        }
    }

    /// Whether any *valid* slave lags beyond the configured bound.
    fn any_valid_slave_lagging(&self) -> bool {
        self.nodes.iter().any(|n| {
            !n.is_master
                && n.valid
                && n.position.offset > 0
                && self.master_offset.saturating_sub(n.position.offset) > self.cfg.max_slave_lag
        })
    }

    fn notify_available(&mut self, ctx: &mut Context<'_>) {
        // Every availability change funnels through here — the natural
        // seam for the cross-mode failover policy.
        self.maybe_mode_transition(ctx);
        let available = u32::try_from(self.available_slaves()).unwrap_or(u32::MAX);
        let lagging = self.any_valid_slave_lagging();
        if self.last_update_sent == Some((available, lagging)) {
            return;
        }
        if let Some(conn) = self.master_conn() {
            self.last_update_sent = Some((available, lagging));
            let msg = NodeMsg::SlaveSetUpdate { available, lagging }.encode();
            self.send_on(ctx, conn, tag::NODE, msg);
        }
    }

    // -- message handling ------------------------------------------------------

    fn on_channel_msg(&mut self, ctx: &mut Context<'_>, conn: usize, msg: ChannelMsg) {
        match msg.tag {
            tag::NODE => {
                if let Some(m) = NodeMsg::decode(&msg.payload) {
                    self.on_node_msg(ctx, conn, m);
                }
            }
            // Steady-state replication request from the master (Fig. 9 ①).
            tag::REPL_STREAM => self.fan_out(ctx, msg.payload),
            // Client command landing on the SoC front-end (cache-on runs
            // route clients at the NIC instead of the master).
            tag::CMD => self.on_client_cmd(ctx, conn, msg.payload),
            // Cookie-framed reply for a command we forwarded to the host.
            tag::FWD_REPLY => self.on_fwd_reply(ctx, msg.payload),
            _ => {}
        }
    }

    // -- hot-key GET cache front-end --------------------------------------------

    /// One client command at the SoC front-end. A single-key GET probes
    /// the hot cache: a hit is answered straight from SoC memory after
    /// the ARM lookup cost — the host is never involved. Everything else
    /// (miss, write, multi-key) is relayed to the master as a
    /// cookie-framed [`tag::FWD_CMD`] after the forwarding cost.
    fn on_client_cmd(&mut self, ctx: &mut Context<'_>, conn: usize, payload: Frame) {
        use skv_store::resp::{Decoded, Resp};
        let get_key = match Resp::decode(&payload) {
            Decoded::Frame(v, _) => match v.into_command_args() {
                Ok(mut args)
                    if args.len() == 2 && args[0].eq_ignore_ascii_case(b"GET") =>
                {
                    Some(args.swap_remove(1))
                }
                _ => None,
            },
            _ => None,
        };
        if let (Some(key), Some(cache)) = (get_key.as_deref(), self.cache.as_mut()) {
            // The sketch tracks GET demand whether or not the key is
            // resident — admission needs hotness for misses too.
            cache.touch(key);
            if let Some(reply) = cache.get(key) {
                let done = self
                    .cpu
                    .run_on(self.fe_core(), ctx.now(), self.cfg.costs.nic_cache_hit)
                    .finished;
                ctx.timer_at(done, NicMsg::CacheReply { conn, frame: reply });
                return;
            }
        }
        self.fwd_seq += 1;
        let cookie = fwd_cookie(self.fwd_epoch, self.fwd_seq);
        self.fwd_pending.insert(cookie, FwdCtx { conn, key: get_key });
        let mut fwd = Vec::with_capacity(8 + payload.len());
        fwd.extend_from_slice(&cookie.to_le_bytes());
        fwd.extend_from_slice(&payload);
        let done = self
            .cpu
            .run_on(self.fe_core(), ctx.now(), self.cfg.costs.nic_fwd)
            .finished;
        ctx.timer_at(
            done,
            NicMsg::FwdSend {
                cookie,
                frame: fwd.into(),
            },
        );
    }

    /// Relay a cookie-framed client command to the master once the
    /// front-end work is done. With no live master channel the client
    /// gets an immediate error reply instead of hanging its closed loop.
    fn fwd_to_master(&mut self, ctx: &mut Context<'_>, cookie: u64, frame: Frame) {
        if let Some(mconn) = self.master_conn() {
            self.send_on(ctx, mconn, tag::FWD_CMD, frame);
            // A send that broke the master channel already failed every
            // outstanding cookie over to an error reply in `close_conn`.
            return;
        }
        let Some(fwd) = self.fwd_pending.remove(&cookie) else {
            return;
        };
        if self.conns[fwd.conn].open {
            let err = skv_store::resp::Resp::Error("ERR master unavailable".into()).encode();
            self.send_on(ctx, fwd.conn, tag::REPLY, err);
        }
    }

    /// A cookie-framed reply came back from the host: pop the pending
    /// forward, offer a successful bulk GET reply for admission, and
    /// relay the inner RESP reply to the waiting client. The admission
    /// version is the replication high-water the NIC has applied — every
    /// write the master acked before producing this reply travelled the
    /// same FIFO channel ahead of it, so the entry is current as of that
    /// offset.
    fn on_fwd_reply(&mut self, ctx: &mut Context<'_>, payload: Frame) {
        if payload.len() < 8 {
            return;
        }
        let Ok(cookie_bytes) = <[u8; 8]>::try_from(&payload[..8]) else {
            return;
        };
        let cookie = u64::from_le_bytes(cookie_bytes);
        if fwd_cookie_epoch(cookie) != self.fwd_epoch {
            // The cookie was minted by a previous SoC incarnation. Without
            // the epoch check a post-restart `fwd_seq` restarting at 1
            // would collide with pre-crash cookies still in flight on the
            // host, handing some new client another command's reply.
            self.stat_fwd_stale_drops += 1;
            return;
        }
        let Some(fwd) = self.fwd_pending.remove(&cookie) else {
            return; // duplicate or already answered-by-error
        };
        let body: Frame = payload[8..].to_vec().into();
        if let (Some(key), Some(cache)) = (fwd.key.as_deref(), self.cache.as_mut()) {
            // Only a present bulk value is a candidate; errors and null
            // bulks (missing key) are not worth a slot.
            if body.first() == Some(&b'$') && !body.starts_with(b"$-1") {
                let version = self.master_offset;
                cache.admit(key, body.clone(), version);
            }
        }
        if !self.conns[fwd.conn].open {
            return; // the client went away; drop the reply
        }
        let done = self
            .cpu
            .run_on(self.fe_core(), ctx.now(), self.cfg.costs.nic_fwd)
            .finished;
        ctx.timer_at(
            done,
            NicMsg::CacheReply {
                conn: fwd.conn,
                frame: body,
            },
        );
    }

    /// The invalidation seam: every replicated dirty command piggybacks
    /// on its stream frame, so the cache drops, refreshes, or taints the
    /// affected keys *before* the master's ack for that write can reach
    /// any client — stream frames precede cookie replies on the FIFO
    /// master channel. A no-op (no state, no CPU) with the cache off.
    fn apply_cache_invalidations(&mut self, frame: &Frame) {
        if self.cache.is_none() {
            return;
        }
        use skv_store::resp::{Decoded, Resp};
        let Some((from_offset, body)) = crate::server::parse_stream_frame(frame) else {
            return;
        };
        let version = from_offset + body.len() as u64;
        let Decoded::Frame(v, _) = Resp::decode(body) else {
            return;
        };
        let Ok(args) = v.into_command_args() else {
            return;
        };
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        let Some(cmd) = args.first() else { return };
        match cmd.to_ascii_uppercase().as_slice() {
            b"SET" => {
                let Some(key) = args.get(1) else { return };
                // A SET carrying any TTL clause taints the key: its host
                // expiry is silent (no stream traffic), so it must never
                // be cached. A plain SET clears old taint and refreshes a
                // resident entry in place.
                let ttl = args.iter().skip(3).any(|a| {
                    let u = a.to_ascii_uppercase();
                    matches!(u.as_slice(), b"EX" | b"PX" | b"EXAT" | b"PXAT" | b"KEEPTTL")
                });
                if ttl {
                    cache.taint(key);
                } else if let Some(value) = args.get(2) {
                    cache.untaint(key);
                    let reply = Resp::Bulk(value.clone()).encode();
                    cache.refresh(key, reply.into(), version);
                }
            }
            b"SETEX" | b"PSETEX" | b"GETEX" | b"EXPIRE" | b"PEXPIRE" | b"EXPIREAT"
            | b"PEXPIREAT" => {
                if let Some(key) = args.get(1) {
                    cache.taint(key);
                }
            }
            b"PERSIST" => {
                if let Some(key) = args.get(1) {
                    cache.untaint(key);
                }
            }
            b"DEL" | b"UNLINK" => {
                for key in &args[1..] {
                    cache.untaint(key);
                    cache.invalidate(key);
                }
            }
            b"MSET" => {
                let mut i = 1;
                while i + 1 < args.len() {
                    cache.untaint(&args[i]);
                    let reply = Resp::Bulk(args[i + 1].clone()).encode();
                    cache.refresh(&args[i], reply.into(), version);
                    i += 2;
                }
            }
            b"FLUSHALL" | b"FLUSHDB" => cache.clear(),
            _ => {
                // Unknown mutator: conservatively drop every key-looking
                // argument.
                for key in &args[1..] {
                    cache.invalidate(key);
                }
            }
        }
    }

    fn on_node_msg(&mut self, ctx: &mut Context<'_>, conn: usize, msg: NodeMsg) {
        match msg {
            NodeMsg::Hello { from, is_master } => {
                self.upsert_node(ctx.now(), from, is_master, Some(conn));
                if is_master {
                    // §III-D: a returning original master demotes whoever
                    // was promoted in its absence.
                    self.demote_promoted(ctx);
                    // Tell the master how many slaves are already valid.
                    self.notify_available(ctx);
                    if self.cfg.mode_failover && self.active_mode != self.cfg.repl_mode {
                        // A (re)connecting master defaults to the
                        // configured mode; bring it up to date with the
                        // mode actually in force.
                        let msg = NodeMsg::ModeChange {
                            mode: self.active_mode,
                        }
                        .encode();
                        self.send_on(ctx, conn, tag::NODE, msg);
                    }
                    if self.deferred() {
                        // A reconnecting master lost any earlier commit
                        // notification state; resend the frontier.
                        self.notified_upto = 0;
                        self.notify_committed(ctx);
                    }
                }
            }
            NodeMsg::SyncRequest { slave, position } => {
                // Fig. 8 ①: record the slave's replication status at the
                // end of the node list, then notify the master (②).
                self.upsert_node(ctx.now(), slave, false, Some(conn));
                if let Some(e) = self.entry_mut(slave) {
                    e.position = position;
                }
                // Small ARM-core cost for parsing + list update
                // (reference-core time; the pool scales it down).
                self.cpu.run_any(ctx.now(), SimDuration::from_nanos(400));
                if let Some(mconn) = self.master_conn() {
                    let relay = NodeMsg::SyncNotify { slave, position }.encode();
                    self.send_on(ctx, mconn, tag::NODE, relay);
                }
                self.notify_available(ctx);
                if self.deferred() {
                    self.apply_ack(ctx, slave, position.offset);
                    match self.active_mode {
                        ReplModeKind::Quorum => self.retransmit_pending(ctx, slave),
                        ReplModeKind::Chain => {
                            // A healed slave re-enters the replication
                            // topology here: splice it onto the *tail* of
                            // every in-flight chain its cumulative offset
                            // does not already cover.
                            let spliced = Self::splice_rejoined_hops(
                                &mut self.pending,
                                slave,
                                position.offset,
                            );
                            if spliced > 0 {
                                self.stat_chain_rejoins += 1;
                            }
                        }
                        ReplModeKind::Async => {}
                    }
                }
            }
            NodeMsg::ProgressReport { slave, offset } => {
                if let Some(e) = self.entry_mut(slave) {
                    e.position.offset = e.position.offset.max(offset);
                    e.last_reply = ctx.now();
                }
                if self.deferred() {
                    self.apply_ack(ctx, slave, offset);
                }
            }
            NodeMsg::WriteAck { slave, offset } => {
                // Chain hop acknowledgement: the slave *applied* the
                // stream up to `offset` (cumulative, so one ack can cover
                // several pending writes).
                if let Some(e) = self.entry_mut(slave) {
                    e.position.offset = e.position.offset.max(offset);
                    e.last_reply = ctx.now();
                }
                if self.deferred() {
                    self.apply_ack(ctx, slave, offset);
                }
            }
            NodeMsg::ProbeReply { seq: _, from } => {
                let now = ctx.now();
                let mut became_valid = false;
                let mut master_returned = false;
                if let Some(e) = self.entry_mut(from) {
                    e.last_reply = now;
                    e.pending_probe_since = None;
                    if !e.valid {
                        e.valid = true;
                        became_valid = true;
                        master_returned = e.is_master;
                        // The node's replication state is unknown until it
                        // reports fresh progress; don't let a stale offset
                        // trip the lag check.
                        e.position.offset = 0;
                    }
                }
                if became_valid {
                    self.recoveries.push((now, from));
                }
                if master_returned {
                    // §III-D: "when the original master node is found
                    // recovered, Nic-KV lets it continue to be the master
                    // node and downgrades the previously selected master".
                    self.demote_promoted(ctx);
                }
                if became_valid {
                    self.notify_available(ctx);
                }
            }
            _ => {}
        }
    }

    /// Send Demote to the slave promoted during a failover, if any.
    fn demote_promoted(&mut self, ctx: &mut Context<'_>) {
        if let Some(promoted) = self.promoted.take() {
            if let Some(conn) = self.entry_mut(promoted).and_then(|e| e.conn) {
                let msg = NodeMsg::Demote.encode();
                self.send_on(ctx, conn, tag::NODE, msg);
            }
        }
    }

    fn upsert_node(
        &mut self,
        now: SimTime,
        addr: SocketAddr,
        is_master: bool,
        conn: Option<usize>,
    ) {
        let mut revalidated = false;
        match self.entry_mut(addr) {
            Some(e) => {
                e.last_reply = now;
                e.pending_probe_since = None;
                if !e.valid {
                    e.valid = true;
                    revalidated = true;
                }
                if conn.is_some() {
                    e.conn = conn;
                }
                e.is_master = is_master || e.is_master;
            }
            None => self.nodes.push(NodeEntry {
                addr,
                is_master,
                position: ReplicationPosition::unsynced(),
                valid: true,
                last_reply: now,
                pending_probe_since: None,
                conn,
            }),
        }
        if revalidated {
            self.recoveries.push((now, addr));
        }
    }

    /// Steady-state fan-out (Fig. 9 ②): write the command into each valid
    /// slave's send buffer and post one WRITE_WITH_IMM per slave, the work
    /// spread round-robin across `thread-num` ARM cores.
    fn fan_out(&mut self, ctx: &mut Context<'_>, frame: Frame) {
        self.note_shard_ingress(&frame);
        self.apply_cache_invalidations(&frame);
        if self.deferred() {
            // Quorum/chain modes track per-write acks; the async fast path
            // below stays bit-identical when `repl_mode` is `Async`.
            self.fan_out_tracked(ctx, frame);
            return;
        }
        self.stat_fanout_msgs += 1;
        // Track the master's offset from the frame header (first 8 bytes),
        // for the lag check of §III-C.
        if let Some((from_offset, body)) = crate::server::parse_stream_frame(&frame) {
            self.master_offset = self.master_offset.max(from_offset + body.len() as u64);
        }
        self.async_send(ctx, frame);
    }

    /// The async-stream send body: per-slave ARM work then one
    /// WRITE_WITH_IMM per valid slave (batched under one doorbell in
    /// `batch_wr_posts` mode). Shared by the steady-state fast path and
    /// the degrade flush, which re-launches window-parked tracked frames
    /// under async semantics (already counted in `stat_fanout_msgs`).
    fn async_send(&mut self, ctx: &mut Context<'_>, frame: Frame) {
        let threads = self.cfg.effective_nic_threads();
        let base = self.cfg.costs.nic_fanout_base;
        let per_slave = self.cfg.costs.nic_per_slave;

        let targets: Vec<usize> = self
            .nodes
            .iter()
            .filter(|n| !n.is_master && n.valid)
            .filter_map(|n| n.conn)
            .filter(|&c| self.conns[c].open)
            .collect();

        // Parsing the request happens once, on the thread that owns the
        // master connection (thread 0 by convention).
        self.cpu.run_on(0, ctx.now(), base);
        if self.cfg.batch_wr_posts {
            // Doorbell-batched mode: each thread still pays its per-slave
            // ring-write cost, but the WQEs are only staged; one doorbell
            // flushes them all once the last thread finishes.
            let mut batch_done = ctx.now();
            let mut conns = Vec::with_capacity(targets.len());
            for conn in targets {
                let thread = self.fanout_cursor % threads;
                self.fanout_cursor += 1;
                let done = self.cpu.run_on(thread, ctx.now(), per_slave).finished;
                self.stat_fanout_sends += 1;
                if done > batch_done {
                    batch_done = done;
                }
                conns.push(conn);
            }
            if !conns.is_empty() {
                ctx.timer_at(batch_done, NicMsg::FanoutSendBatch { conns, frame });
            }
            return;
        }
        for conn in targets {
            let thread = self.fanout_cursor % threads;
            self.fanout_cursor += 1;
            let done = self.cpu.run_on(thread, ctx.now(), per_slave).finished;
            self.stat_fanout_sends += 1;
            ctx.timer_at(
                done,
                NicMsg::FanoutSend {
                    conn,
                    frame: frame.clone(),
                },
            );
        }
    }

    /// Post the staged fan-out WRs for one replicated write under a single
    /// doorbell. Channels whose handshake is still outstanding queue the
    /// message internally (as `send` would); a failed batch entry breaks
    /// only its own channel.
    fn fan_out_batch(&mut self, ctx: &mut Context<'_>, conns: Vec<usize>, frame: Frame) {
        let net = self.net.clone();
        let mut staged = Vec::with_capacity(conns.len());
        let mut wrs = Vec::with_capacity(conns.len());
        for conn in conns {
            if !self.conns[conn].open {
                continue;
            }
            if let Some((qp, wr)) = self.conns[conn]
                .channel
                .build_wr(tag::REPL_STREAM, frame.clone())
            {
                staged.push(conn);
                wrs.push((qp, wr));
            } else if !self.conns[conn].channel.ready() {
                // Queued behind the handshake; it posts (and is counted)
                // from the completion drain's flush accounting.
                self.conns[conn].deferred_wrs += 1;
            }
        }
        if wrs.is_empty() {
            return;
        }
        self.stat_doorbells += 1;
        self.stat_wrs_posted += wrs.len() as u64;
        let outcomes = net.post_send_batch(ctx, wrs);
        for (conn, outcome) in staged.into_iter().zip(outcomes) {
            if outcome.is_err() {
                self.conns[conn].channel.mark_broken();
                self.close_conn(ctx, conn);
            }
        }
    }

    // -- tracked replication (quorum / chain modes) -----------------------------

    /// Tracked-mode entry point for one replicated write. Shares the async
    /// path's parse cost and offset bookkeeping, then launches the write
    /// under the mode's WR pattern — or parks it in `window_queue` when the
    /// in-flight window is full.
    fn fan_out_tracked(&mut self, ctx: &mut Context<'_>, frame: Frame) {
        self.stat_fanout_msgs += 1;
        let Some((from_offset, body)) = crate::server::parse_stream_frame(&frame) else {
            return;
        };
        let end_offset = from_offset + body.len() as u64;
        self.master_offset = self.master_offset.max(end_offset);
        if self.pending.len() >= self.cfg.repl_window.max(1) {
            self.window_queue.push_back(frame);
            return;
        }
        self.launch_write(ctx, frame, end_offset);
    }

    fn launch_write(&mut self, ctx: &mut Context<'_>, frame: Frame, end_offset: u64) {
        // Parse cost on the master-connection thread, as in the async path.
        self.cpu
            .run_on(0, ctx.now(), self.cfg.costs.nic_fanout_base);
        self.write_seq += 1;
        let seq = self.write_seq;
        let targets: Vec<(usize, SocketAddr)> = self
            .nodes
            .iter()
            .filter(|n| !n.is_master && n.valid)
            .filter_map(|n| n.conn.map(|c| (c, n.addr)))
            .filter(|&(c, _)| self.conns[c].open)
            .collect();
        match self.active_mode {
            ReplModeKind::Quorum => {
                let needed = quorum_slave_acks(self.cfg.num_slaves);
                self.pending.push_back(PendingWrite {
                    seq,
                    end_offset,
                    frame,
                    acked: Vec::new(),
                    needed,
                    hops: VecDeque::new(),
                    hop_inflight: false,
                });
                let threads = self.cfg.effective_nic_threads();
                let per_slave = self.cfg.costs.nic_per_slave;
                let mut batch_done = ctx.now();
                let mut conns = Vec::with_capacity(targets.len());
                for (conn, _) in targets {
                    let thread = self.fanout_cursor % threads;
                    self.fanout_cursor += 1;
                    let done = self.cpu.run_on(thread, ctx.now(), per_slave).finished;
                    self.stat_fanout_sends += 1;
                    if done > batch_done {
                        batch_done = done;
                    }
                    conns.push(conn);
                }
                if !conns.is_empty() {
                    ctx.timer_at(batch_done, NicMsg::TrackedSend { seq, conns });
                }
                // N = 0 commits immediately (master is the whole quorum).
                self.check_commits(ctx);
            }
            ReplModeKind::Chain => {
                let hops: VecDeque<SocketAddr> =
                    targets.into_iter().map(|(_, addr)| addr).collect();
                self.pending.push_back(PendingWrite {
                    seq,
                    end_offset,
                    frame,
                    acked: Vec::new(),
                    needed: 0,
                    hops,
                    hop_inflight: false,
                });
                self.advance_chain(ctx, seq);
            }
            ReplModeKind::Async => unreachable!("async writes use fan_out"),
        }
    }

    /// Post one tracked write's WRs to `conns` under a single doorbell,
    /// arming `wr_acks` so the send-side completions land back on the
    /// write. Also the quorum retransmit path (single-conn `conns`).
    fn tracked_send(&mut self, ctx: &mut Context<'_>, seq: u64, conns: Vec<usize>) {
        let Some(frame) = self
            .pending
            .iter()
            .find(|p| p.seq == seq)
            .map(|p| p.frame.clone())
        else {
            return; // committed before the fan-out work finished
        };
        let net = self.net.clone();
        let mut staged: Vec<(usize, QpId, u64)> = Vec::with_capacity(conns.len());
        let mut wrs = Vec::with_capacity(conns.len());
        for conn in conns {
            if !self.conns[conn].open {
                continue;
            }
            let Some(addr) = self.addr_of_conn(conn) else {
                continue;
            };
            if let Some((qp, wr)) = self.conns[conn]
                .channel
                .build_wr(tag::REPL_STREAM, frame.clone())
            {
                self.wr_acks.insert((qp, wr.wr_id), (seq, addr));
                staged.push((conn, qp, wr.wr_id));
                wrs.push((qp, wr));
            } else if !self.conns[conn].channel.ready() {
                // Queued behind the handshake. No completion will carry
                // this WR back to `wr_acks`; the slave's cumulative
                // progress (`ProgressReport`/resync) acks it instead.
                self.conns[conn].deferred_wrs += 1;
            }
        }
        if wrs.is_empty() {
            return;
        }
        self.stat_doorbells += 1;
        self.stat_wrs_posted += wrs.len() as u64;
        let outcomes = net.post_send_batch(ctx, wrs);
        for ((conn, qp, wr_id), outcome) in staged.into_iter().zip(outcomes) {
            if outcome.is_err() {
                self.wr_acks.remove(&(qp, wr_id));
                self.conns[conn].channel.mark_broken();
                self.close_conn(ctx, conn);
            }
        }
    }

    /// Chain mode: prune dead head hops, then schedule a post to the
    /// current head if none is in flight.
    fn advance_chain(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let Some(idx) = self.pending.iter().position(|p| p.seq == seq) else {
            return;
        };
        while let Some(next) = self.pending[idx].hops.front().copied() {
            let alive = self
                .nodes
                .iter()
                .any(|n| n.addr == next && n.valid && n.conn.is_some_and(|c| self.conns[c].open));
            if alive {
                break;
            }
            self.pending[idx].hops.pop_front();
            self.pending[idx].hop_inflight = false;
            self.stat_chain_repairs += 1;
        }
        if self.pending[idx].hops.is_empty() {
            self.check_commits(ctx);
            return;
        }
        if self.pending[idx].hop_inflight {
            return;
        }
        self.pending[idx].hop_inflight = true;
        let threads = self.cfg.effective_nic_threads();
        let thread = self.fanout_cursor % threads;
        self.fanout_cursor += 1;
        let done = self
            .cpu
            .run_on(thread, ctx.now(), self.cfg.costs.nic_per_slave)
            .finished;
        self.stat_fanout_sends += 1;
        ctx.timer_at(done, NicMsg::ChainHop { seq });
    }

    /// Post one chain write to its head hop (the `ChainHop` timer body).
    fn chain_hop_post(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let Some(idx) = self.pending.iter().position(|p| p.seq == seq) else {
            return;
        };
        let Some(target) = self.pending[idx].hops.front().copied() else {
            self.pending[idx].hop_inflight = false;
            self.check_commits(ctx);
            return;
        };
        let conn = self
            .nodes
            .iter()
            .find(|n| n.addr == target)
            .and_then(|n| n.conn)
            .filter(|&c| self.conns[c].open);
        let Some(conn) = conn else {
            // The hop died between scheduling and posting.
            self.pending[idx].hop_inflight = false;
            self.chain_repair(ctx);
            return;
        };
        let frame = self.pending[idx].frame.clone();
        let net = self.net.clone();
        if let Some((qp, wr)) = self.conns[conn].channel.build_wr(tag::REPL_STREAM, frame) {
            let wr_id = wr.wr_id;
            self.wr_acks.insert((qp, wr_id), (seq, target));
            self.stat_doorbells += 1;
            self.stat_wrs_posted += 1;
            if net.post_send(ctx, qp, wr).is_err() {
                self.wr_acks.remove(&(qp, wr_id));
                self.conns[conn].channel.mark_broken();
                self.close_conn(ctx, conn);
                self.pending[idx].hop_inflight = false;
                self.chain_repair(ctx);
            }
        } else if !self.conns[conn].channel.ready() {
            // Queued behind the handshake; it posts from the drain's flush
            // and the hop still completes via the slave's applied ack.
            self.conns[conn].deferred_wrs += 1;
        }
    }

    /// A tracked WR completed successfully: `slave` holds the write's
    /// bytes (RC semantics — a send-side success means remote placement).
    fn on_wr_ack(&mut self, ctx: &mut Context<'_>, seq: u64, slave: SocketAddr) {
        match self.active_mode {
            ReplModeKind::Quorum => {
                if let Some(p) = self.pending.iter_mut().find(|p| p.seq == seq) {
                    if !p.acked.contains(&slave) {
                        p.acked.push(slave);
                    }
                }
                self.check_commits(ctx);
            }
            // Chain hops advance on the slave's *applied* ack (`WriteAck`),
            // not on delivery; nothing to do for the completion itself.
            ReplModeKind::Chain | ReplModeKind::Async => {}
        }
    }

    /// A tracked WR failed. Quorum just loses this ack (the slave's resync
    /// progress is the backstop); chain must splice the dead hop out and
    /// move the write along.
    fn on_wr_error(&mut self, ctx: &mut Context<'_>, seq: u64, slave: SocketAddr) {
        if self.active_mode != ReplModeKind::Chain {
            return;
        }
        let mut advance = false;
        if let Some(p) = self.pending.iter_mut().find(|p| p.seq == seq) {
            if p.hops.front() == Some(&slave) {
                p.hops.pop_front();
                p.hop_inflight = false;
            } else {
                p.hops.retain(|h| *h != slave);
            }
            self.stat_chain_repairs += 1;
            advance = !p.hops.is_empty();
        }
        if advance {
            self.advance_chain(ctx, seq);
        }
        self.check_commits(ctx);
    }

    /// Fold a slave's cumulative applied offset (`WriteAck`, NIC-side
    /// `ProgressReport`, or re-registration position) into every pending
    /// write it covers. The cumulative form makes lost per-WR acks and
    /// resync-delivered bytes converge on the same commit bookkeeping.
    fn apply_ack(&mut self, ctx: &mut Context<'_>, slave: SocketAddr, upto: u64) {
        if self.pending.is_empty() {
            return;
        }
        let chain = self.active_mode == ReplModeKind::Chain;
        let mut advance: Vec<u64> = Vec::new();
        for p in &mut self.pending {
            if p.end_offset > upto {
                break;
            }
            if !p.acked.contains(&slave) {
                p.acked.push(slave);
            }
            if chain {
                if p.hops.front() == Some(&slave) {
                    p.hops.pop_front();
                    p.hop_inflight = false;
                    if !p.hops.is_empty() {
                        advance.push(p.seq);
                    }
                } else if p.hops.contains(&slave) {
                    // Covered out of order (a resync ran ahead of the
                    // chain): drop the hop wherever it sits.
                    p.hops.retain(|h| *h != slave);
                }
            }
        }
        for seq in advance {
            self.advance_chain(ctx, seq);
        }
        self.check_commits(ctx);
    }

    /// Pop every front write whose commit condition holds, bump
    /// `committed_upto`, notify the master, and refill the window.
    fn check_commits(&mut self, ctx: &mut Context<'_>) {
        if !self.deferred() {
            return;
        }
        let chain = self.active_mode == ReplModeKind::Chain;
        let mut committed = false;
        loop {
            let done = match self.pending.front() {
                Some(p) if chain => p.hops.is_empty(),
                Some(p) => p.acked.len() >= p.needed,
                None => false,
            };
            if !done {
                break;
            }
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            self.committed_upto = self.committed_upto.max(p.end_offset);
            self.stat_commits += 1;
            if self.cfg.record_commits {
                self.committed_acks.push((p.end_offset, p.acked));
            }
            committed = true;
        }
        if committed {
            self.notify_committed(ctx);
            self.refill_window(ctx);
        }
    }

    /// Push the commit frontier to the master so it can release deferred
    /// client replies.
    fn notify_committed(&mut self, ctx: &mut Context<'_>) {
        if self.committed_upto <= self.notified_upto {
            return;
        }
        if let Some(conn) = self.master_conn() {
            self.notified_upto = self.committed_upto;
            let msg = NodeMsg::WriteCommitted {
                upto: self.committed_upto,
            }
            .encode();
            self.send_on(ctx, conn, tag::NODE, msg);
        }
    }

    /// Launch queued writes into freed window slots.
    fn refill_window(&mut self, ctx: &mut Context<'_>) {
        while self.pending.len() < self.cfg.repl_window.max(1) {
            let Some(frame) = self.window_queue.pop_front() else {
                return;
            };
            let Some((from_offset, body)) = crate::server::parse_stream_frame(&frame) else {
                continue;
            };
            let end_offset = from_offset + body.len() as u64;
            self.launch_write(ctx, frame, end_offset);
        }
    }

    /// Quorum mode: re-post every pending write a re-registering slave has
    /// not acked. Duplicate delivery is harmless (slave-side offset
    /// dedupe); the completions repair acks lost to a broken QP.
    fn retransmit_pending(&mut self, ctx: &mut Context<'_>, slave: SocketAddr) {
        let Some(conn) = self
            .nodes
            .iter()
            .find(|n| n.addr == slave)
            .and_then(|n| n.conn)
            .filter(|&c| self.conns[c].open)
        else {
            return;
        };
        let seqs: Vec<u64> = self
            .pending
            .iter()
            .filter(|p| !p.acked.contains(&slave))
            .map(|p| p.seq)
            .collect();
        for seq in seqs {
            self.stat_retransmits += 1;
            self.cpu.run_any(ctx.now(), self.cfg.costs.nic_per_slave);
            self.tracked_send(ctx, seq, vec![conn]);
        }
    }

    /// Chain mode: splice every dead hop out of every in-flight chain and
    /// re-drive stalled writes. Run after completion drains and failure
    /// detections — any path that can tear a conn down.
    fn chain_repair(&mut self, ctx: &mut Context<'_>) {
        if self.active_mode != ReplModeKind::Chain {
            return;
        }
        let alive: Vec<SocketAddr> = self
            .nodes
            .iter()
            .filter(|n| !n.is_master && n.valid && n.conn.is_some_and(|c| self.conns[c].open))
            .map(|n| n.addr)
            .collect();
        let mut advance: Vec<u64> = Vec::new();
        let mut repaired = false;
        for p in &mut self.pending {
            let before = p.hops.len();
            let front = p.hops.front().copied();
            p.hops.retain(|h| alive.contains(h));
            if p.hops.len() != before {
                repaired = true;
                if p.hops.front().copied() != front {
                    p.hop_inflight = false;
                }
            }
            if !p.hop_inflight && !p.hops.is_empty() {
                advance.push(p.seq);
            }
        }
        if repaired {
            self.stat_chain_repairs += 1;
        }
        for seq in advance {
            self.advance_chain(ctx, seq);
        }
        self.check_commits(ctx);
    }

    /// Chain mode: splice a re-registering slave back into the hop order.
    /// The slave resumes at the *tail* of every in-flight chain — never
    /// mid-chain, which would reorder hops under writes already past it —
    /// and only for writes its cumulative applied offset does not cover.
    /// The historical bug was re-adding the slave to every pending write:
    /// writes below its resync offset were then delivered twice, once by
    /// the master's resync stream and once by the replayed chain hop, and
    /// the chain stalled waiting for an applied ack the slave's offset
    /// dedupe had already swallowed. Returns the number of chains spliced.
    fn splice_rejoined_hops(
        pending: &mut VecDeque<PendingWrite>,
        slave: SocketAddr,
        acked_upto: u64,
    ) -> usize {
        let mut spliced = 0;
        for p in pending.iter_mut() {
            // `end_offset <= acked_upto`: the resync stream already
            // carried these bytes — replaying the hop would open an
            // overlapping delivery window.
            if p.end_offset <= acked_upto
                || p.acked.contains(&slave)
                || p.hops.contains(&slave)
                // A chain whose hop list already drained is committed (or
                // about to be); un-committing it would regress the
                // frontier announced to the master.
                || p.hops.is_empty()
            {
                continue;
            }
            p.hops.push_back(slave);
            spliced += 1;
        }
        spliced
    }

    // -- cross-mode failover (`ClusterConfig::mode_failover`) -------------------

    /// The failover policy, run on every availability change: a quorum
    /// cluster that can no longer assemble a write quorum degrades to the
    /// async stream rather than stalling every client, and re-promotes to
    /// the configured mode once enough slaves return. Linearizability is
    /// promised only up to the first degradation instant; `mode_changes`
    /// is the seam `histcheck::check_linearizable_upto` cuts at.
    fn maybe_mode_transition(&mut self, ctx: &mut Context<'_>) {
        if !self.cfg.mode_failover || self.cfg.repl_mode != ReplModeKind::Quorum {
            return;
        }
        let need = quorum_slave_acks(self.cfg.num_slaves);
        let avail = self.available_slaves();
        self.peak_slaves = self.peak_slaves.max(avail);
        if self.active_mode == self.cfg.repl_mode && avail < need && self.peak_slaves >= need {
            self.degrade_to_async(ctx);
        } else if self.active_mode == ReplModeKind::Async && avail >= need {
            self.promote_to_configured(ctx);
        }
    }

    /// Degrade to the async stream. Every byte the master has streamed so
    /// far is re-declared committed under async semantics (the master's
    /// deferred replies release), tracked-write state is dropped, and
    /// window-parked frames are flushed through the async fast path so no
    /// write is lost in the transition.
    fn degrade_to_async(&mut self, ctx: &mut Context<'_>) {
        self.active_mode = ReplModeKind::Async;
        self.stat_mode_changes += 1;
        self.mode_changes.push((ctx.now(), ReplModeKind::Async));
        self.committed_upto = self.committed_upto.max(self.master_offset);
        self.pending.clear();
        self.wr_acks = DetMap::new();
        let queued: Vec<Frame> = self.window_queue.drain(..).collect();
        for frame in queued {
            self.async_send(ctx, frame);
        }
        if let Some(conn) = self.master_conn() {
            let msg = NodeMsg::ModeChange {
                mode: ReplModeKind::Async,
            }
            .encode();
            self.send_on(ctx, conn, tag::NODE, msg);
        }
        self.notify_committed(ctx);
    }

    /// Re-promote to the configured mode. The async interlude's bytes
    /// commit by the semantics they were written under; tracking starts
    /// fresh at the current stream frontier.
    fn promote_to_configured(&mut self, ctx: &mut Context<'_>) {
        self.active_mode = self.cfg.repl_mode;
        self.stat_mode_changes += 1;
        self.mode_changes.push((ctx.now(), self.active_mode));
        self.committed_upto = self.committed_upto.max(self.master_offset);
        if let Some(conn) = self.master_conn() {
            let msg = NodeMsg::ModeChange {
                mode: self.active_mode,
            }
            .encode();
            self.send_on(ctx, conn, tag::NODE, msg);
        }
        self.notify_committed(ctx);
    }

    // -- failure detection (§III-D) ---------------------------------------------

    fn on_probe_tick(&mut self, ctx: &mut Context<'_>) {
        ctx.timer(self.cfg.probe_interval, NicMsg::ProbeTick);
        let now = ctx.now();
        self.probe_seq += 1;
        let seq = self.probe_seq;

        // A node is failed when a probe sent `waiting-time` ago has no
        // reply (§III-D).
        let waiting = self.cfg.waiting_time;
        let mut detected = Vec::new();
        let mut master_failed = false;
        for e in &mut self.nodes {
            let overdue = e
                .pending_probe_since
                .is_some_and(|t| now.saturating_since(t) > waiting);
            if e.valid && overdue {
                e.valid = false;
                detected.push((now, e.addr));
                if e.is_master {
                    master_failed = true;
                }
            }
        }
        let any_detected = !detected.is_empty();
        self.detections.extend(detected);
        if master_failed && self.promoted.is_none() {
            self.failover(ctx);
        }

        // Send this round's probes (cheap ARM work per probe). One encode,
        // one buffer: each target's copy is a Frame refcount bump.
        let probe: Frame = NodeMsg::Probe { seq }.encode().into();
        let targets: Vec<(usize, SocketAddr)> = self
            .nodes
            .iter()
            .filter_map(|e| e.conn.map(|c| (c, e.addr)))
            .filter(|&(c, _)| self.conns[c].open)
            .collect();
        for (conn, addr) in targets {
            let cost = SimDuration::from_nanos(150);
            self.cpu.run_any(now, cost);
            self.stat_probes += 1;
            if let Some(e) = self.entry_mut(addr) {
                if e.pending_probe_since.is_none() {
                    e.pending_probe_since = Some(now);
                }
            }
            self.send_on(ctx, conn, tag::NODE, probe.clone());
        }
        // Push availability/lag state to the master when it changed.
        if any_detected {
            // Newly invalid nodes break in-flight chains: splice them out.
            self.chain_repair(ctx);
        }
        self.notify_available(ctx);
    }

    /// §III-D: "one of the available slave nodes is selected as the master
    /// node" — the one with the highest replication offset loses the least.
    fn failover(&mut self, ctx: &mut Context<'_>) {
        let best = self
            .nodes
            .iter()
            .filter(|n| !n.is_master && n.valid)
            .max_by_key(|n| (n.position.offset, std::cmp::Reverse(n.addr)))
            .map(|n| (n.addr, n.conn));
        let Some((addr, Some(conn))) = best else {
            return;
        };
        self.promoted = Some(addr);
        self.stat_failovers += 1;
        let msg = NodeMsg::Promote.encode();
        self.send_on(ctx, conn, tag::NODE, msg);
    }
}

impl Actor for NicKv {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.id();
        let cq = self.net.create_cq(me);
        self.cq = Some(cq);
        self.net.rdma_listen(self.addr, me);
        self.net.req_notify_cq(ctx, cq);
        ctx.timer(self.cfg.probe_interval, NicMsg::ProbeTick);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        // Control events work even while crashed (Recover must).
        let msg = match msg.downcast::<NicControl>() {
            Ok(ctrl) => {
                match *ctrl {
                    NicControl::Crash => {
                        self.crashed = true;
                        self.net.set_node_up(self.node, false);
                    }
                    NicControl::Recover => {
                        self.crashed = false;
                        self.net.set_node_up(self.node, true);
                        // The SoC restarted: transport state and the node
                        // list are gone. The master's Hello redial and the
                        // slaves' re-registration polls rebuild the list.
                        // Front-end state first — a restarted process has
                        // no cookies to answer and rejoins with a *cold*
                        // cache — and before the close loop, so tearing
                        // down the master conn doesn't fire error replies
                        // into already-dead client channels.
                        if let Some(cache) = self.cache.as_mut() {
                            cache.clear();
                        }
                        self.fwd_seq = 0;
                        // The boot counter is the one durable datum: it
                        // fences every cookie minted before this restart.
                        self.fwd_epoch += 1;
                        self.fwd_pending = DetMap::new();
                        self.nodes.clear();
                        for i in 0..self.conns.len() {
                            self.close_conn(ctx, i);
                        }
                        self.promoted = None;
                        self.master_offset = 0;
                        self.last_update_sent = None;
                        // Tracked-mode state is process state: gone too.
                        // The master re-replicates unacked bytes through
                        // resync; uncommitted writes surface as timeouts.
                        self.pending.clear();
                        self.wr_acks = DetMap::new();
                        self.window_queue.clear();
                        self.committed_upto = 0;
                        self.notified_upto = 0;
                        // Route stale completions through the channels so
                        // surviving receive slots are replenished (the
                        // messages themselves are dropped — the process
                        // "restarted"), then re-arm. Same helper as
                        // KvServer::Recover.
                        if let Some(cq) = self.cq {
                            let net = self.net.clone();
                            cqdrain::recover_drain(&net, ctx, cq, |ctx, wc| {
                                if let Some(&conn) = self.by_qp.get(&wc.qp) {
                                    let _ = self.conns[conn].channel.on_wc(&net, ctx, &wc);
                                }
                            });
                        }
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let msg = match msg.downcast::<NicMsg>() {
            Ok(m) => {
                match *m {
                    // Keep the probe-timer chain alive through a crash so
                    // probing resumes on recovery.
                    NicMsg::ProbeTick if self.crashed => {
                        ctx.timer(self.cfg.probe_interval, NicMsg::ProbeTick);
                    }
                    NicMsg::ProbeTick => self.on_probe_tick(ctx),
                    NicMsg::FanoutSend { .. } if self.crashed => {}
                    NicMsg::FanoutSend { conn, frame } => {
                        // Count at actual post time: `send_on` reports how
                        // many WRs really rang a doorbell. A frame queued
                        // behind the MR handshake posts later, inside the
                        // completion drain's flush — `deferred_wrs` carries
                        // it to that accounting point.
                        let was_open = self.conns[conn].open;
                        let posted = self.send_on(ctx, conn, tag::REPL_STREAM, frame) as u64;
                        self.stat_doorbells += posted;
                        self.stat_wrs_posted += posted;
                        if posted == 0
                            && was_open
                            && self.conns[conn].open
                            && !self.conns[conn].channel.ready()
                        {
                            self.conns[conn].deferred_wrs += 1;
                        }
                    }
                    NicMsg::FanoutSendBatch { .. } if self.crashed => {}
                    NicMsg::FanoutSendBatch { conns, frame } => {
                        self.fan_out_batch(ctx, conns, frame);
                    }
                    NicMsg::TrackedSend { .. } if self.crashed => {}
                    NicMsg::TrackedSend { seq, conns } => {
                        self.tracked_send(ctx, seq, conns);
                    }
                    NicMsg::ChainHop { .. } if self.crashed => {}
                    NicMsg::ChainHop { seq } => {
                        self.chain_hop_post(ctx, seq);
                    }
                    NicMsg::CacheReply { .. } if self.crashed => {}
                    NicMsg::CacheReply { conn, frame } => {
                        self.send_on(ctx, conn, tag::REPLY, frame);
                    }
                    NicMsg::FwdSend { .. } if self.crashed => {}
                    NicMsg::FwdSend { cookie, frame } => {
                        self.fwd_to_master(ctx, cookie, frame);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        if self.crashed {
            return; // a crashed process handles nothing
        }
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmConnectRequest { req, .. } => {
                // Stale or double-answered requests are benign: ignore.
                let Some(cq) = self.cq else { return };
                let _ = self.net.rdma_accept(ctx, req, cq);
            }
            NetEvent::CmEstablished { qp, .. } => {
                if self.by_qp.contains_key(&qp) {
                    return;
                }
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                let idx = self.conns.len();
                self.by_qp.insert(qp, idx);
                self.conns.push(ConnState {
                    channel: ch,
                    open: true,
                    deferred_wrs: 0,
                });
            }
            NetEvent::CqNotify { cq } => {
                // Budgeted drain on the slow ARM cores: at most
                // `cq_poll_budget` completions per event, CPU charged to
                // thread 0, over-budget bursts continued after that work —
                // the realistic back-pressure under fan-in.
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    let Some(&conn) = self.by_qp.get(&wc.qp) else {
                        return;
                    };
                    if !self.conns[conn].open {
                        return;
                    }
                    // Tracked-mode ack hook: a send-side completion for a
                    // replication WR resolves its `(seq, slave)` entry —
                    // success means the slave holds the bytes (RC), error
                    // feeds chain repair. Empty map (async mode) is free.
                    if matches!(wc.opcode, WcOpcode::RdmaWrite) {
                        if let Some((seq, slave)) = self.wr_acks.remove(&(wc.qp, wc.wr_id)) {
                            if wc.status == WcStatus::Success {
                                self.on_wr_ack(ctx, seq, slave);
                            } else {
                                self.on_wr_error(ctx, seq, slave);
                            }
                        }
                    }
                    let msg = self.conns[conn].channel.on_wc(&net, ctx, &wc);
                    // A handshake completion flushes queued messages; the
                    // fan-out frames among them post right here, so this
                    // is their actual post time for the statistics.
                    let flushed = self.conns[conn].channel.take_flushed_wrs();
                    if flushed > 0 {
                        let fanout = flushed.min(self.conns[conn].deferred_wrs);
                        self.conns[conn].deferred_wrs -= fanout;
                        self.stat_doorbells += fanout;
                        self.stat_wrs_posted += fanout;
                    }
                    if let Some(m) = msg {
                        self.on_channel_msg(ctx, conn, m);
                    } else if self.conns[conn].channel.broken() {
                        self.close_conn(ctx, conn);
                    }
                });
                // Completion errors may have torn connections down; give
                // in-flight chains a chance to splice dead hops out.
                self.chain_repair(ctx);
                let done = self.cpu.run_on(0, ctx.now(), out.cpu_cost).finished;
                if out.more {
                    ctx.timer_at(done, NetEvent::CqNotify { cq });
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "nic-kv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use skv_netsim::{SendOp, SendWr, Topology};
    use skv_simcore::{FnActor, SimTime, Simulation};

    use crate::config::{ClusterConfig, Mode};

    /// Kick the scripted peer into dialing Nic-KV.
    struct Connect;

    /// Poke the scripted peer into finally sending its MR handshake.
    struct ReleaseHandshake;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// `(rdma.wrs_posted, rdma.doorbells)` fabric snapshot.
    fn fabric_posts(net: &Net) -> (u64, u64) {
        let c = net.counters();
        (c.get("rdma.wrs_posted"), c.get("rdma.doorbells"))
    }

    /// Drive a Nic-KV against a scripted peer that establishes its QP but
    /// *withholds* its half of the MR handshake until poked, so the
    /// Nic-KV-side channel sits open-but-not-ready while fan-out work
    /// arrives. The WR statistics must track the fabric's `rdma.wrs_posted`
    /// and `rdma.doorbells` exactly through all three phases: nothing while
    /// frames queue, the deferred frames once the handshake flushes them,
    /// and immediate posts afterwards.
    fn deferred_fanout_stats_agree(batched: bool) {
        let mut sim = Simulation::new(17);
        let mut topo = Topology::new();
        let nic_host = topo.add_host();
        let nic_node = topo.add_smartnic(nic_host);
        let peer_node = topo.add_host();
        let mut cfg = ClusterConfig::for_mode(Mode::Skv);
        cfg.batch_wr_posts = batched;
        let net = skv_netsim::Net::install(&mut sim, topo, cfg.net.clone());
        let nic_addr = SocketAddr::new(nic_node, 7000);
        let ring = cfg.ring_size;

        let nic_id = sim.add_actor(Box::new(NicKv::new(net.clone(), cfg, nic_node, nic_addr)));

        let peer_qp: Rc<RefCell<Option<QpId>>> = Rc::default();
        let pq = peer_qp.clone();
        let n = net.clone();
        let peer = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let msg = match msg.downcast::<Connect>() {
                Ok(_) => {
                    let cq = n.create_cq(ctx.id());
                    n.req_notify_cq(ctx, cq);
                    n.rdma_connect(ctx, peer_node, ctx.id(), cq, nic_addr);
                    return;
                }
                Err(msg) => msg,
            };
            let msg = match msg.downcast::<ReleaseHandshake>() {
                Ok(_) => {
                    // The withheld half of the channel handshake: register
                    // a receive ring and send its handle, exactly as
                    // `Channel::rdma` would have at establishment.
                    let qp = pq.borrow().expect("established before release");
                    let mr = n.register_mr(peer_node, ring);
                    n.post_send(
                        ctx,
                        qp,
                        SendWr {
                            wr_id: u64::MAX - 1,
                            op: SendOp::Send,
                            data: mr.0.to_le_bytes().to_vec().into(),
                        },
                    )
                    .expect("handshake post");
                    return;
                }
                Err(msg) => msg,
            };
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmEstablished { qp, .. } => {
                    *pq.borrow_mut() = Some(qp);
                    // Plenty of receive slots for Nic-KV's handshake SEND
                    // and the fan-out writes; the peer never replenishes.
                    for i in 0..64u64 {
                        n.post_recv(qp, i).expect("post recv");
                    }
                }
                NetEvent::CqNotify { cq } => {
                    n.poll_cq(cq, usize::MAX);
                    n.req_notify_cq(ctx, cq);
                }
                _ => {}
            }
        })));
        sim.schedule(SimTime::ZERO, peer, Connect);

        // Phase 0: connection up, Nic-KV's handshake sent, peer silent —
        // the channel is open but not ready, and nothing fan-out-related
        // has been posted.
        sim.run_until(t(5));
        {
            let nic = sim.actor_ref::<NicKv>(nic_id).expect("nic actor");
            assert_eq!(nic.conns.len(), 1, "peer connected");
            assert!(nic.conns[0].open && !nic.conns[0].channel.ready());
            assert_eq!(nic.stat_wrs_posted, 0);
        }
        let (wrs0, dbs0) = fabric_posts(&net);

        // Phase 1: three fan-out frames while the handshake is
        // outstanding. They must queue — zero WRs on the fabric, zero in
        // the statistics (the historical bug counted them here).
        let frame = || Frame::copy_from_slice(b"repl-stream-frame");
        if batched {
            sim.schedule(
                t(6),
                nic_id,
                NicMsg::FanoutSendBatch {
                    conns: vec![0, 0, 0],
                    frame: frame(),
                },
            );
        } else {
            for i in 0..3 {
                sim.schedule(
                    t(6 + i),
                    nic_id,
                    NicMsg::FanoutSend {
                        conn: 0,
                        frame: frame(),
                    },
                );
            }
        }
        sim.run_until(t(10));
        {
            let nic = sim.actor_ref::<NicKv>(nic_id).expect("nic actor");
            assert_eq!(nic.stat_wrs_posted, 0, "queued frames are not posts");
            assert_eq!(nic.stat_doorbells, 0);
            assert_eq!(nic.conns[0].deferred_wrs, 3);
        }
        assert_eq!(
            fabric_posts(&net),
            (wrs0, dbs0),
            "nothing reached the fabric"
        );

        // Phase 2: the peer completes the handshake; the queued frames
        // flush (as individual posts — deferral forfeits batching) and the
        // statistics pick them up at actual post time. The fabric saw one
        // extra WR: the peer's own handshake SEND.
        sim.schedule(t(11), peer, ReleaseHandshake);
        sim.run_until(t(20));
        {
            let nic = sim.actor_ref::<NicKv>(nic_id).expect("nic actor");
            assert!(nic.conns[0].channel.ready());
            assert_eq!(nic.stat_wrs_posted, 3);
            assert_eq!(nic.stat_doorbells, 3);
            assert_eq!(nic.conns[0].deferred_wrs, 0);
        }
        let (wrs1, dbs1) = fabric_posts(&net);
        assert_eq!(wrs1 - wrs0, 3 + 1, "3 flushed fan-out WRs + peer handshake");
        assert_eq!(dbs1 - dbs0, 3 + 1);

        // Phase 3: the channel is ready, so fan-out posts immediately —
        // statistics and fabric deltas now agree WR for WR (and in batched
        // mode, one doorbell for the pair).
        if batched {
            sim.schedule(
                t(21),
                nic_id,
                NicMsg::FanoutSendBatch {
                    conns: vec![0, 0],
                    frame: frame(),
                },
            );
        } else {
            for i in 0..2 {
                sim.schedule(
                    t(21 + i),
                    nic_id,
                    NicMsg::FanoutSend {
                        conn: 0,
                        frame: frame(),
                    },
                );
            }
        }
        sim.run_until(t(30));
        let expected_dbs = if batched { 1 } else { 2 };
        {
            let nic = sim.actor_ref::<NicKv>(nic_id).expect("nic actor");
            assert_eq!(nic.stat_wrs_posted, 3 + 2);
            assert_eq!(nic.stat_doorbells, 3 + expected_dbs);
        }
        let (wrs2, dbs2) = fabric_posts(&net);
        assert_eq!(wrs2 - wrs1, 2);
        assert_eq!(dbs2 - dbs1, expected_dbs);
    }

    #[test]
    fn deferred_fanout_stats_agree_with_fabric_serial() {
        deferred_fanout_stats_agree(false);
    }

    #[test]
    fn deferred_fanout_stats_agree_with_fabric_batched() {
        deferred_fanout_stats_agree(true);
    }

    fn pending_write(seq: u64, end_offset: u64, hops: &[SocketAddr]) -> PendingWrite {
        PendingWrite {
            seq,
            end_offset,
            frame: Frame::copy_from_slice(b"w"),
            acked: Vec::new(),
            needed: 0,
            hops: hops.iter().copied().collect(),
            hop_inflight: false,
        }
    }

    #[test]
    fn chain_rejoin_splices_at_the_tail_without_overlap() {
        let node = skv_netsim::NodeId(0);
        let s1 = SocketAddr::new(node, 1);
        let s2 = SocketAddr::new(node, 2);
        let rejoiner = SocketAddr::new(node, 3);
        let mut pending: VecDeque<PendingWrite> = VecDeque::new();
        // Covered by the rejoiner's resync offset: must NOT be replayed.
        pending.push_back(pending_write(1, 100, &[s1]));
        // Past the offset with live hops: rejoiner appends at the tail.
        pending.push_back(pending_write(2, 200, &[s1, s2]));
        // Chain already drained (committing): must stay empty.
        pending.push_back(pending_write(3, 300, &[]));
        // Rejoiner already listed (registered twice): no duplicate hop.
        pending.push_back(pending_write(4, 400, &[s1, rejoiner]));

        let spliced = NicKv::splice_rejoined_hops(&mut pending, rejoiner, 150);
        assert_eq!(spliced, 1, "only the uncovered live chain is spliced");
        assert_eq!(pending[0].hops, VecDeque::from([s1]), "covered write untouched");
        assert_eq!(
            pending[1].hops,
            VecDeque::from([s1, s2, rejoiner]),
            "rejoiner resumes at the tail, after every existing hop"
        );
        assert!(pending[2].hops.is_empty(), "committed chain stays committed");
        assert_eq!(
            pending[3].hops,
            VecDeque::from([s1, rejoiner]),
            "no duplicate hop for a double registration"
        );

        // A second registration at a higher offset covers writes 1–2 and
        // adds nothing new.
        let again = NicKv::splice_rejoined_hops(&mut pending, rejoiner, 250);
        assert_eq!(again, 0);
    }
}
