//! Keyspace sharding: hash-slot routing and the slave apply pipeline.
//!
//! The master's command path partitions the keyspace Redis-Cluster style
//! (CRC16 of the key → 16384 slots → contiguous slot ranges per shard,
//! see [`crate::protocol::key_hash_slot`]). [`ShardRouter`] turns a
//! parsed command into a [`RoutePlan`]: which shard executes it, or how a
//! multi-key command splits across shards. [`ApplyRing`] models the
//! bounded SPSC ring between a sharded slave's parse core and apply core
//! — the backpressure that keeps the pipeline honest.
//!
//! Everything here is pure bookkeeping over simulated time; with one
//! shard every plan degenerates to `Single(0)` and no caller behavior
//! changes.

use skv_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

use crate::protocol::{key_hash_slot, slot_shard};

/// CPU cost of handing a command fragment to another shard's queue
/// (deterministic inter-shard message passing: enqueue + wakeup). Charged
/// once per extra shard a cross-shard command touches; never drawn at one
/// shard, so the single-shard schedule is untouched. Fixed rather than a
/// config knob — it models a cache-line handoff, not a tunable.
pub const CROSS_SHARD_HOP: SimDuration = SimDuration::from_nanos(400);

/// Capacity of the slave apply pipeline's parse→apply ring.
pub const APPLY_RING_CAP: usize = 64;

/// How a command routes across the shard set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutePlan {
    /// The whole command executes on one shard (single-key commands,
    /// keyless commands, and multi-key commands whose keys all land on
    /// one shard).
    Single(usize),
    /// Execute on every shard and merge replies (FLUSHDB/FLUSHALL).
    Broadcast,
    /// MSET/MSETNX-style `key value` pairs: split the pair list by shard.
    SplitPairs,
    /// Per-key commands with integer replies summed across shards
    /// (DEL/UNLINK/EXISTS).
    SplitSum,
    /// MGET: per-key split, replies gathered back in original key order.
    SplitGather,
    /// A multi-key command this engine cannot split (RENAME, SMOVE,
    /// SINTERSTORE, …) whose keys span shards: rejected with the same
    /// error class Redis Cluster uses.
    CrossSlot,
}

/// Maps parsed commands to shards. Holds only the shard count; slots are
/// computed per key.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// A router over `num_shards` shards (0 is treated as 1).
    pub fn new(num_shards: usize) -> Self {
        ShardRouter {
            num_shards: num_shards.max(1),
        }
    }

    /// The shard count this router was built for.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `key`.
    pub fn shard_of_key(&self, key: &[u8]) -> usize {
        slot_shard(key_hash_slot(key), self.num_shards)
    }

    /// Route one parsed command. With one shard, always `Single(0)`.
    pub fn plan(&self, args: &[Vec<u8>]) -> RoutePlan {
        if self.num_shards <= 1 {
            return RoutePlan::Single(0);
        }
        let Some(name) = args.first() else {
            return RoutePlan::Single(0);
        };
        let upper: Vec<u8> = name.iter().map(u8::to_ascii_uppercase).collect();
        match upper.as_slice() {
            b"FLUSHDB" | b"FLUSHALL" => RoutePlan::Broadcast,
            b"MSET" => self.plan_pairs(args),
            b"MSETNX" => {
                // All-or-nothing across shards would need a cross-shard
                // transaction; mirror Redis Cluster and reject spans.
                if self.pairs_span_shards(args) {
                    RoutePlan::CrossSlot
                } else {
                    self.single_by_first_key(args)
                }
            }
            b"MGET" => self.plan_keys(args, RoutePlan::SplitGather),
            b"DEL" | b"UNLINK" | b"EXISTS" => self.plan_keys(args, RoutePlan::SplitSum),
            // Two-key commands: both keys must cohabit a shard (callers
            // use hash tags to arrange that, exactly as on Redis Cluster).
            b"RENAME" | b"RENAMENX" | b"COPY" | b"RPOPLPUSH" | b"SMOVE" => {
                match (args.get(1), args.get(2)) {
                    (Some(a), Some(b)) if self.shard_of_key(a) != self.shard_of_key(b) => {
                        RoutePlan::CrossSlot
                    }
                    _ => self.single_by_first_key(args),
                }
            }
            // Variadic set algebra: every input key (args[1..] or the
            // destination + sources) must share a shard.
            b"SINTER" | b"SUNION" | b"SDIFF" | b"SINTERSTORE" | b"SUNIONSTORE"
            | b"SDIFFSTORE" => {
                if self.keys_span_shards(&args[1..]) {
                    RoutePlan::CrossSlot
                } else {
                    self.single_by_first_key(args)
                }
            }
            // BITOP op destkey srckey...: keys start at args[2].
            b"BITOP" => {
                if self.keys_span_shards(args.get(2..).unwrap_or(&[])) {
                    RoutePlan::CrossSlot
                } else {
                    match args.get(2) {
                        Some(k) => RoutePlan::Single(self.shard_of_key(k)),
                        None => RoutePlan::Single(0),
                    }
                }
            }
            // Keyspace-wide reads run on one shard per shard's slice; the
            // merged view is a cross-shard gather.
            b"DBSIZE" | b"KEYS" | b"SCAN" | b"RANDOMKEY" => RoutePlan::Single(0),
            _ => self.single_by_first_key(args),
        }
    }

    fn single_by_first_key(&self, args: &[Vec<u8>]) -> RoutePlan {
        match args.get(1) {
            Some(key) => RoutePlan::Single(self.shard_of_key(key)),
            None => RoutePlan::Single(0),
        }
    }

    fn plan_keys(&self, args: &[Vec<u8>], split: RoutePlan) -> RoutePlan {
        if self.keys_span_shards(&args[1..]) {
            split
        } else {
            self.single_by_first_key(args)
        }
    }

    fn plan_pairs(&self, args: &[Vec<u8>]) -> RoutePlan {
        if self.pairs_span_shards(args) {
            RoutePlan::SplitPairs
        } else {
            self.single_by_first_key(args)
        }
    }

    fn keys_span_shards(&self, keys: &[Vec<u8>]) -> bool {
        let mut shards = keys.iter().map(|k| self.shard_of_key(k));
        let Some(first) = shards.next() else {
            return false;
        };
        shards.any(|s| s != first)
    }

    fn pairs_span_shards(&self, args: &[Vec<u8>]) -> bool {
        let mut shards = args[1..].chunks(2).filter_map(|pair| {
            let key = pair.first()?;
            Some(self.shard_of_key(key))
        });
        let Some(first) = shards.next() else {
            return false;
        };
        shards.any(|s| s != first)
    }
}

/// Bounded SPSC ring between a sharded slave's parse stage (core 0) and
/// apply stage (core 1), in simulated time. The producer may not start
/// parsing a command until the ring has a free slot; a slot frees when
/// its apply finishes. `max_depth` records the deepest occupancy seen —
/// exported as the `shard.queue_depth` counter.
#[derive(Debug)]
pub struct ApplyRing {
    /// Finish times of in-flight applies, oldest first.
    in_flight: VecDeque<SimTime>,
    cap: usize,
    /// Deepest simultaneous occupancy observed.
    pub max_depth: usize,
}

impl ApplyRing {
    /// A ring holding at most `cap` parsed-but-unapplied commands.
    pub fn new(cap: usize) -> Self {
        ApplyRing {
            in_flight: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            max_depth: 0,
        }
    }

    /// Earliest time a new command may start parsing, given slots free as
    /// their applies finish. Returns `now` when a slot is already free;
    /// otherwise the oldest in-flight apply's finish time (backpressure).
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        while self.in_flight.front().is_some_and(|&f| f <= now) {
            self.in_flight.pop_front();
        }
        if self.in_flight.len() < self.cap {
            now
        } else {
            // Full: the producer stalls until the head apply retires.
            self.in_flight.pop_front().unwrap_or(now).max(now)
        }
    }

    /// Record a newly admitted command's apply finish time.
    pub fn complete(&mut self, finish: SimTime) {
        self.in_flight.push_back(finish);
        self.max_depth = self.max_depth.max(self.in_flight.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<Vec<u8>> {
        parts.iter().map(|p| p.as_bytes().to_vec()).collect()
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for cmd in [
            vec!["SET", "a", "1"],
            vec!["MSET", "a", "1", "b", "2"],
            vec!["FLUSHDB"],
            vec!["RENAME", "a", "b"],
            vec!["PING"],
        ] {
            assert_eq!(r.plan(&argv(&cmd)), RoutePlan::Single(0), "{cmd:?}");
        }
    }

    #[test]
    fn multi_shard_plans() {
        let r = ShardRouter::new(4);
        // Find two keys on different shards and two on the same shard.
        let a = b"key-a".to_vec();
        let mut other = None;
        let mut same = None;
        for i in 0..200u32 {
            let k = format!("key-{i}").into_bytes();
            if r.shard_of_key(&k) != r.shard_of_key(&a) {
                other.get_or_insert(k);
            } else if k != a {
                same.get_or_insert(k);
            }
        }
        let (other, same) = (other.unwrap(), same.unwrap());
        let s = |b: &[u8]| String::from_utf8_lossy(b).into_owned();

        assert_eq!(
            r.plan(&argv(&["SET", &s(&a), "1"])),
            RoutePlan::Single(r.shard_of_key(&a))
        );
        assert_eq!(r.plan(&argv(&["FLUSHALL"])), RoutePlan::Broadcast);
        assert_eq!(
            r.plan(&argv(&["MSET", &s(&a), "1", &s(&other), "2"])),
            RoutePlan::SplitPairs
        );
        assert_eq!(
            r.plan(&argv(&["MSET", &s(&a), "1", &s(&same), "2"])),
            RoutePlan::Single(r.shard_of_key(&a)),
            "co-located MSET stays single-shard"
        );
        assert_eq!(
            r.plan(&argv(&["MGET", &s(&a), &s(&other)])),
            RoutePlan::SplitGather
        );
        assert_eq!(
            r.plan(&argv(&["DEL", &s(&a), &s(&other)])),
            RoutePlan::SplitSum
        );
        assert_eq!(
            r.plan(&argv(&["RENAME", &s(&a), &s(&other)])),
            RoutePlan::CrossSlot
        );
        assert_eq!(
            r.plan(&argv(&["RENAME", &s(&a), &s(&same)])),
            RoutePlan::Single(r.shard_of_key(&a))
        );
        // Hash tags pin a would-be span onto one shard.
        let tagged = [format!("{{t}}:{}", s(&a)), format!("{{t}}:{}", s(&other))];
        assert_eq!(
            r.plan(&argv(&["RENAME", &tagged[0], &tagged[1]])),
            RoutePlan::Single(r.shard_of_key(b"t"))
        );
    }

    #[test]
    fn apply_ring_backpressures_when_full() {
        let mut ring = ApplyRing::new(2);
        let t = SimTime::from_millis;
        assert_eq!(ring.admit(t(0)), t(0));
        ring.complete(t(10));
        assert_eq!(ring.admit(t(0)), t(0));
        ring.complete(t(20));
        // Ring full with applies finishing at 10 and 20: the next admit
        // at t=5 stalls until the head (t=10) retires.
        assert_eq!(ring.admit(t(5)), t(10));
        ring.complete(t(30));
        // By t=25 the t=20 apply retired too, so admission is immediate.
        assert_eq!(ring.admit(t(25)), t(25));
        ring.complete(t(40));
        assert_eq!(ring.max_depth, 2);
    }
}
