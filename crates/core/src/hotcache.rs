//! SoC-resident hot-key GET cache (mechanism) behind a pluggable
//! admission/eviction policy plane.
//!
//! The paper's Figure 13 only shows Nic-KV GET *parity* with the host
//! path: every GET still crosses from the SoC to the host core and back.
//! This module is the mechanism half of beating that — the Nic-KV keeps
//! the hottest keys' encoded GET replies in SoC memory (refcounted
//! [`Frame`]s, so serving a hit is a refcount bump) under a hard byte
//! budget, and answers hits without ever waking the host.
//!
//! Design (ported from the kernel-boundary hot-key caches in the related
//! repos — CMS hotness tracking, admission policies, version-based
//! invalidation, hard memory budgets):
//!
//! * **Hotness** — a Count-Min-Sketch ([`CountMinSketch`]) with periodic
//!   count-halving decay approximates per-key GET frequency in O(width ×
//!   depth) bytes, no matter how large the keyspace. The NIC records
//!   every GET it proxies; the sketch is what lets TinyLFU-style
//!   admission compare a candidate against a victim without per-key
//!   state.
//! * **Policy** — [`CachePolicy`] decides *admission* (should this
//!   freshly-fetched reply displace the eviction victim?). [`LruPolicy`]
//!   always admits (classic LRU cache); [`TinyLfuPolicy`] admits only
//!   when the sketch says the candidate is hotter than the victim, which
//!   protects the working set from scan pollution. Eviction order is
//!   recency for both (the policy plane sweeps admission — the paper's
//!   ablation axis — while the mechanism keeps one intrusive LRU list).
//! * **Versioning** — every entry records the master's replication
//!   offset (`version`) current when the reply was produced. The
//!   invalidation seam in `nickv.rs` parses every replication stream
//!   frame *before* fan-out and drops/refreshes covered entries, so a
//!   hit can never be older than the last write the NIC has seen on the
//!   stream.
//! * **TTL taint** — expiry is *not* replicated (slaves expire
//!   independently), so a cached value under a TTL could silently die on
//!   the host with no stream traffic. Any TTL-touching command taints
//!   its key: tainted keys are never admitted and a taint drops the
//!   entry. A plain SET or DEL clears the taint (both reset the key to
//!   an un-TTL'd state).
//!
//! Counters are exported as `cache.{hits,misses,admits,evicts,
//! invalidations,bytes}` (see `metrics::catalog::CACHE_COUNTERS`).

use skv_netsim::DetMap;
use skv_simcore::Frame;

/// Byte overhead charged per cache entry on top of the stored reply
/// frame: key copy, slot bookkeeping, LRU links. Keeps the budget honest
/// for small values without modelling the allocator.
pub const ENTRY_OVERHEAD: usize = 64;

// ===========================================================================
// Count-Min-Sketch hotness tracker
// ===========================================================================

/// Width (counters per row) of the sketch. 1024 four-row 8-bit counters
/// track a 10k-key Zipf working set with collision error well under the
/// hot/cold frequency gap the admission decision cares about.
const CMS_WIDTH: usize = 1024;
/// Rows (independent hash functions).
const CMS_DEPTH: usize = 4;
/// Decay (halve every counter) after this many recorded touches — the
/// "decaying window" that lets a shifted hot set displace the old one.
const CMS_DECAY_EVERY: u64 = 16 * CMS_WIDTH as u64;

/// A Count-Min-Sketch over key bytes with count-halving decay.
///
/// Deterministic by construction: row hashes are FNV-1a variants seeded
/// with fixed odd constants, and decay triggers on touch *counts*, not
/// time — the same key stream always produces the same sketch.
pub struct CountMinSketch {
    rows: Vec<Vec<u8>>,
    touches: u64,
    decays: u64,
}

impl CountMinSketch {
    /// An empty sketch at the fixed width/depth.
    pub fn new() -> Self {
        CountMinSketch {
            rows: vec![vec![0u8; CMS_WIDTH]; CMS_DEPTH],
            touches: 0,
            decays: 0,
        }
    }

    #[allow(clippy::cast_possible_truncation)] // reduced mod CMS_WIDTH first
    fn bucket(row: usize, key: &[u8]) -> usize {
        // FNV-1a with a per-row seed; rows stay independent because the
        // seed lands before any key byte is folded in.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(row as u64 + 1));
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % CMS_WIDTH as u64) as usize
    }

    /// Record one touch of `key`, decaying the whole sketch when the
    /// window fills.
    pub fn touch(&mut self, key: &[u8]) {
        for row in 0..CMS_DEPTH {
            let b = Self::bucket(row, key);
            let c = &mut self.rows[row][b];
            *c = c.saturating_add(1);
        }
        self.touches += 1;
        if self.touches.is_multiple_of(CMS_DECAY_EVERY) {
            for row in &mut self.rows {
                for c in row.iter_mut() {
                    *c >>= 1;
                }
            }
            self.decays += 1;
        }
    }

    /// Estimated touch count of `key` (upper bound; min over rows).
    pub fn estimate(&self, key: &[u8]) -> u32 {
        let mut min = u8::MAX;
        for row in 0..CMS_DEPTH {
            let c = self.rows[row][Self::bucket(row, key)];
            min = min.min(c);
        }
        u32::from(min)
    }

    /// How many count-halving decays have run (test observability).
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// Forget everything (SoC crash → cold sketch).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.iter_mut().for_each(|c| *c = 0);
        }
        self.touches = 0;
        self.decays = 0;
    }
}

impl Default for CountMinSketch {
    fn default() -> Self {
        Self::new()
    }
}

// ===========================================================================
// Policy plane
// ===========================================================================

/// Which admission policy a cluster runs — the ablation axis. Parsed
/// from `ClusterConfig::hot_cache_policy` (see
/// [`CachePolicyKind::parse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicyKind {
    /// Admit everything; evict by recency (classic LRU).
    Lru,
    /// TinyLFU-style: admit only when the sketch says the candidate is
    /// hotter than the eviction victim.
    TinyLfu,
}

impl CachePolicyKind {
    /// Every policy, for sweeps.
    pub const ALL: [CachePolicyKind; 2] = [CachePolicyKind::Lru, CachePolicyKind::TinyLfu];

    /// Parse a policy name from the config knob. `None` for unknown
    /// names — `ClusterConfig::validate` turns that into a typed error.
    pub fn parse(name: &str) -> Option<CachePolicyKind> {
        match name {
            "lru" => Some(CachePolicyKind::Lru),
            "tinylfu" => Some(CachePolicyKind::TinyLfu),
            _ => None,
        }
    }

    /// The knob spelling of this policy.
    pub fn label(self) -> &'static str {
        match self {
            CachePolicyKind::Lru => "lru",
            CachePolicyKind::TinyLfu => "tinylfu",
        }
    }
}

/// Admission decision plane. The mechanism (store, LRU order, budget,
/// invalidation) is fixed; the policy decides only whether a miss that
/// just completed earns a slot at the victim's expense.
pub trait CachePolicy {
    /// Should `candidate` be admitted when making room would evict
    /// `victim`? `victim` is `None` when the budget has free space.
    fn admit(&self, sketch: &CountMinSketch, candidate: &[u8], victim: Option<&[u8]>) -> bool;

    /// The kind this policy was built from (reporting).
    fn kind(&self) -> CachePolicyKind;
}

/// Always admit; pure recency cache.
pub struct LruPolicy;

impl CachePolicy for LruPolicy {
    fn admit(&self, _sketch: &CountMinSketch, _candidate: &[u8], _victim: Option<&[u8]>) -> bool {
        true
    }

    fn kind(&self) -> CachePolicyKind {
        CachePolicyKind::Lru
    }
}

/// TinyLFU-style admission: a candidate must out-score the victim in the
/// frequency sketch to displace it. With free space it always admits.
pub struct TinyLfuPolicy;

impl CachePolicy for TinyLfuPolicy {
    fn admit(&self, sketch: &CountMinSketch, candidate: &[u8], victim: Option<&[u8]>) -> bool {
        match victim {
            None => true,
            Some(v) => sketch.estimate(candidate) > sketch.estimate(v),
        }
    }

    fn kind(&self) -> CachePolicyKind {
        CachePolicyKind::TinyLfu
    }
}

/// Build the policy object for a parsed kind.
pub fn policy_for(kind: CachePolicyKind) -> Box<dyn CachePolicy> {
    match kind {
        CachePolicyKind::Lru => Box::new(LruPolicy),
        CachePolicyKind::TinyLfu => Box::new(TinyLfuPolicy),
    }
}

// ===========================================================================
// Counters
// ===========================================================================

/// Cache observability, exported as `cache.*` counters (catalogued in
/// `metrics::catalog::CACHE_COUNTERS`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// GETs answered straight from SoC memory.
    pub hits: u64,
    /// GETs that fell through to the host path.
    pub misses: u64,
    /// Replies admitted into the cache.
    pub admits: u64,
    /// Entries evicted to make room under the byte budget.
    pub evicts: u64,
    /// Entries dropped or refreshed by stream-driven invalidation.
    pub invalidations: u64,
}

// ===========================================================================
// Hot cache store
// ===========================================================================

/// Slot index sentinel for "no link".
const NIL: usize = usize::MAX;

struct Entry {
    key: Vec<u8>,
    /// Encoded RESP reply (`$N\r\n...\r\n`), refcounted — a hit clones
    /// the view, not the bytes.
    value: Frame,
    /// Master replication offset current when this reply was produced.
    version: u64,
    /// Bytes charged against the budget (value + overhead).
    charged: usize,
    prev: usize,
    next: usize,
}

/// The NIC-resident hot-key cache: keyed frame store under a hard byte
/// budget with an intrusive LRU list, a hotness sketch, and a TTL taint
/// set. All operations are O(1) plus the map lookup.
pub struct HotCache {
    /// Hard byte budget (`ClusterConfig::hot_cache_bytes`).
    budget: usize,
    policy: Box<dyn CachePolicy>,
    sketch: CountMinSketch,
    map: DetMap<Vec<u8>, usize>,
    slots: Vec<Entry>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (eviction victim).
    tail: usize,
    /// Bytes currently charged.
    bytes: usize,
    /// Keys currently under a TTL on the host — never cacheable, since
    /// their expiry generates no stream traffic.
    tainted: skv_netsim::DetSet<Vec<u8>>,
    /// Counter set.
    pub stats: CacheStats,
}

impl HotCache {
    /// An empty cache with `budget` bytes and the given policy.
    pub fn new(budget: usize, kind: CachePolicyKind) -> Self {
        HotCache {
            budget,
            policy: policy_for(kind),
            sketch: CountMinSketch::new(),
            map: DetMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            tainted: skv_netsim::DetSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// The policy kind in force.
    pub fn policy_kind(&self) -> CachePolicyKind {
        self.policy.kind()
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Record a GET touch in the hotness sketch (hit or miss — the
    /// sketch tracks demand, not residency).
    pub fn touch(&mut self, key: &[u8]) {
        self.sketch.touch(key);
    }

    /// Look up `key`, counting a hit or miss and refreshing recency on a
    /// hit. Returns the cached reply frame (cheap refcount clone).
    pub fn get(&mut self, key: &[u8]) -> Option<Frame> {
        match self.map.get(&key.to_vec()).copied() {
            Some(slot) => {
                self.unlink(slot);
                self.link_front(slot);
                self.stats.hits += 1;
                Some(self.slots[slot].value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek at a cached entry's version without touching recency or
    /// counters (tests, invariant checks).
    pub fn version_of(&self, key: &[u8]) -> Option<u64> {
        self.map.get(&key.to_vec()).map(|&slot| self.slots[slot].version)
    }

    /// Offer a completed GET reply for admission. `version` is the
    /// master replication offset the NIC had processed when the reply
    /// was produced. Tainted keys, oversized values, and
    /// policy-rejected candidates are not stored.
    pub fn admit(&mut self, key: &[u8], value: Frame, version: u64) -> bool {
        let charged = value.len() + ENTRY_OVERHEAD;
        if self.budget == 0 || charged > self.budget || self.tainted.contains(&key.to_vec()) {
            return false;
        }
        if let Some(&slot) = self.map.get(&key.to_vec()) {
            // Refresh in place (newer reply for a key already resident).
            self.bytes -= self.slots[slot].charged;
            self.bytes += charged;
            let e = &mut self.slots[slot];
            e.value = value;
            e.version = version;
            e.charged = charged;
            self.unlink(slot);
            self.link_front(slot);
            self.evict_to_fit();
            return true;
        }
        // Policy gate: compare against the current victim once; if
        // admitted, evict as many victims as the budget demands.
        if self.bytes + charged > self.budget {
            let victim = (self.tail != NIL).then(|| self.slots[self.tail].key.clone());
            if !self.policy.admit(&self.sketch, key, victim.as_deref()) {
                return false;
            }
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Entry {
                    key: key.to_vec(),
                    value,
                    version,
                    charged,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slots.push(Entry {
                    key: key.to_vec(),
                    value,
                    version,
                    charged,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key.to_vec(), slot);
        self.bytes += charged;
        self.link_front(slot);
        self.stats.admits += 1;
        self.evict_to_fit();
        true
    }

    /// Drop `key` (invalidation). Returns true when an entry died.
    pub fn invalidate(&mut self, key: &[u8]) -> bool {
        if let Some(slot) = self.map.remove(&key.to_vec()) {
            self.unlink(slot);
            self.bytes -= self.slots[slot].charged;
            self.slots[slot].value = Frame::new();
            self.slots[slot].key.clear();
            self.free.push(slot);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Refresh a resident entry in place from a replicated plain SET:
    /// the new value and the stream offset that carried it. A key that
    /// is not resident is left alone (no admission on writes — the
    /// sketch tracks GET demand only). Returns true when refreshed.
    pub fn refresh(&mut self, key: &[u8], value: Frame, version: u64) -> bool {
        let Some(&slot) = self.map.get(&key.to_vec()) else {
            return false;
        };
        let charged = value.len() + ENTRY_OVERHEAD;
        if charged > self.budget {
            // Grown past the whole budget: drop instead.
            self.invalidate(key);
            return false;
        }
        self.bytes -= self.slots[slot].charged;
        self.bytes += charged;
        let e = &mut self.slots[slot];
        e.value = value;
        e.version = version;
        e.charged = charged;
        self.stats.invalidations += 1;
        self.evict_to_fit();
        true
    }

    /// Mark `key` as living under a host-side TTL: drop any resident
    /// entry and refuse future admissions until the taint clears.
    pub fn taint(&mut self, key: &[u8]) {
        self.invalidate(key);
        self.tainted.insert(key.to_vec());
    }

    /// Clear `key`'s TTL taint (plain SET / DEL reset the key to an
    /// un-TTL'd state on the host).
    pub fn untaint(&mut self, key: &[u8]) {
        self.tainted.remove(&key.to_vec());
    }

    /// Is `key` currently tainted? (test observability)
    pub fn is_tainted(&self, key: &[u8]) -> bool {
        self.tainted.contains(&key.to_vec())
    }

    /// Drop every entry, the sketch and the taint set — the cold-cache
    /// state after an SoC crash or a lost master channel. Counters
    /// survive (they describe the run, not the cache).
    pub fn clear(&mut self) {
        self.map = DetMap::new();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
        self.sketch.clear();
        self.tainted = skv_netsim::DetSet::new();
    }

    fn evict_to_fit(&mut self) {
        while self.bytes > self.budget && self.tail != NIL {
            let victim = self.tail;
            let key = std::mem::take(&mut self.slots[victim].key);
            self.unlink(victim);
            self.map.remove(&key);
            self.bytes -= self.slots[victim].charged;
            self.slots[victim].value = Frame::new();
            self.free.push(victim);
            self.stats.evicts += 1;
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Keys in recency order, hottest first (test observability).
    pub fn keys_mru(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut at = self.head;
        while at != NIL {
            out.push(self.slots[at].key.clone());
            at = self.slots[at].next;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// FWD_CMD cookie framing
// ---------------------------------------------------------------------------

/// Bits of a forward cookie carrying the per-boot epoch. A FWD_REPLY is
/// only answerable by the front-end *incarnation* that issued its
/// cookie: the SoC bumps the epoch on every cold rejoin, so a reply to a
/// cookie minted before a crash can never resolve a pending forward
/// issued after it — without the epoch, a rejoined front end restarting
/// its sequence at 1 would hand stale host replies to fresh clients.
pub const FWD_EPOCH_BITS: u32 = 16;

/// Pack a forward cookie from the front end's boot epoch and its
/// per-epoch sequence number. The sequence occupies the low 48 bits —
/// at millions of forwards per second that is decades of headroom.
pub fn fwd_cookie(epoch: u64, seq: u64) -> u64 {
    (epoch << (64 - FWD_EPOCH_BITS)) | (seq & ((1 << (64 - FWD_EPOCH_BITS)) - 1))
}

/// The epoch a cookie was minted under.
pub fn fwd_cookie_epoch(cookie: u64) -> u64 {
    cookie >> (64 - FWD_EPOCH_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Frame {
        Frame::from_vec(vec![b'v'; n])
    }

    #[test]
    fn fwd_cookies_carry_the_boot_epoch() {
        for epoch in [0u64, 1, 7, (1 << FWD_EPOCH_BITS) - 1] {
            for seq in [0u64, 1, 42, (1 << (64 - FWD_EPOCH_BITS)) - 1] {
                let c = fwd_cookie(epoch, seq);
                assert_eq!(fwd_cookie_epoch(c), epoch);
                assert_eq!(c & ((1 << (64 - FWD_EPOCH_BITS)) - 1), seq);
            }
        }
        // Equal sequence numbers from different boots never collide —
        // the property that makes stale FWD_REPLYs detectable.
        assert_ne!(fwd_cookie(0, 1), fwd_cookie(1, 1));
        // Epoch 0 cookies are the bare sequence: the pre-epoch framing
        // is a strict subset, so old traces still parse.
        assert_eq!(fwd_cookie(0, 99), 99);
    }

    #[test]
    fn policy_names_parse() {
        assert_eq!(CachePolicyKind::parse("lru"), Some(CachePolicyKind::Lru));
        assert_eq!(
            CachePolicyKind::parse("tinylfu"),
            Some(CachePolicyKind::TinyLfu)
        );
        assert_eq!(CachePolicyKind::parse("arc"), None);
        for k in CachePolicyKind::ALL {
            assert_eq!(CachePolicyKind::parse(k.label()), Some(k));
        }
    }

    #[test]
    fn sketch_estimates_and_decays() {
        let mut s = CountMinSketch::new();
        for _ in 0..10 {
            s.touch(b"hot");
        }
        s.touch(b"cold");
        assert!(s.estimate(b"hot") >= 10);
        assert!(s.estimate(b"cold") >= 1);
        assert!(s.estimate(b"hot") > s.estimate(b"cold"));
        // Never-seen keys may collide but four rows keep them far below
        // the hot key's count.
        assert!(s.estimate(b"absent") < s.estimate(b"hot"));
        // Drive one decay window with a single filler key (its buckets
        // saturate; "hot"'s stay untouched modulo rare collisions) and
        // check "hot" roughly halved.
        let before = s.estimate(b"hot");
        for _ in 0..CMS_DECAY_EVERY {
            s.touch(b"filler");
        }
        assert!(s.decays() >= 1);
        assert!(s.estimate(b"hot") < before, "decay must shrink hot");
    }

    #[test]
    fn sketch_is_deterministic() {
        let mut a = CountMinSketch::new();
        let mut b = CountMinSketch::new();
        for i in 0..1000u32 {
            let k = format!("k{}", i % 37);
            a.touch(k.as_bytes());
            b.touch(k.as_bytes());
        }
        for i in 0..37u32 {
            let k = format!("k{i}");
            assert_eq!(a.estimate(k.as_bytes()), b.estimate(k.as_bytes()));
        }
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = HotCache::new(10_000, CachePolicyKind::Lru);
        assert!(c.get(b"a").is_none());
        assert!(c.admit(b"a", frame(10), 1));
        assert!(c.admit(b"b", frame(10), 2));
        assert_eq!(c.get(b"a").map(|f| f.len()), Some(10));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        // `a` was touched last → MRU order is [a, b].
        assert_eq!(c.keys_mru(), vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn budget_evicts_lru_first() {
        // Budget fits exactly two 36-byte entries (100 B value charge).
        let budget = 2 * (36 + ENTRY_OVERHEAD);
        let mut c = HotCache::new(budget, CachePolicyKind::Lru);
        assert!(c.admit(b"a", frame(36), 1));
        assert!(c.admit(b"b", frame(36), 2));
        assert_eq!(c.bytes(), budget);
        // Touch `a` so `b` is the LRU victim.
        assert!(c.get(b"a").is_some());
        assert!(c.admit(b"c", frame(36), 3));
        assert_eq!(c.stats.evicts, 1);
        assert!(c.get(b"b").is_none(), "LRU victim must be b");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"c").is_some());
        assert!(c.bytes() <= budget);
    }

    #[test]
    fn oversized_and_zero_budget_never_admit() {
        let mut c = HotCache::new(100, CachePolicyKind::Lru);
        assert!(!c.admit(b"big", frame(200), 1));
        let mut z = HotCache::new(0, CachePolicyKind::Lru);
        assert!(!z.admit(b"any", frame(1), 1));
        assert_eq!(z.stats.admits, 0);
    }

    #[test]
    fn tinylfu_rejects_cold_candidates() {
        let budget = 36 + ENTRY_OVERHEAD; // exactly one entry
        let mut c = HotCache::new(budget, CachePolicyKind::TinyLfu);
        for _ in 0..8 {
            c.touch(b"hot");
        }
        c.touch(b"cold");
        assert!(c.admit(b"hot", frame(36), 1));
        // Cold candidate cannot displace the hot resident…
        assert!(!c.admit(b"cold", frame(36), 2));
        assert!(c.get(b"hot").is_some());
        // …but a hotter one can.
        for _ in 0..16 {
            c.touch(b"hotter");
        }
        assert!(c.admit(b"hotter", frame(36), 3));
        assert!(c.get(b"hot").is_none());
        assert!(c.get(b"hotter").is_some());
    }

    #[test]
    fn invalidate_and_refresh() {
        let mut c = HotCache::new(10_000, CachePolicyKind::Lru);
        assert!(c.admit(b"k", frame(8), 5));
        assert_eq!(c.version_of(b"k"), Some(5));
        // Refresh bumps version and swaps bytes in place.
        assert!(c.refresh(b"k", frame(12), 9));
        assert_eq!(c.version_of(b"k"), Some(9));
        assert_eq!(c.get(b"k").map(|f| f.len()), Some(12));
        // Refreshing a non-resident key is a no-op, not an admission.
        assert!(!c.refresh(b"other", frame(4), 10));
        assert!(c.version_of(b"other").is_none());
        // Invalidate kills the entry.
        assert!(c.invalidate(b"k"));
        assert!(!c.invalidate(b"k"));
        assert!(c.get(b"k").is_none());
        assert_eq!(c.bytes(), 0);
        assert!(c.stats.invalidations >= 2);
    }

    #[test]
    fn taint_blocks_admission_until_cleared() {
        let mut c = HotCache::new(10_000, CachePolicyKind::Lru);
        assert!(c.admit(b"k", frame(8), 1));
        c.taint(b"k");
        assert!(c.get(b"k").is_none(), "taint drops the resident entry");
        assert!(!c.admit(b"k", frame(8), 2), "tainted keys never admit");
        assert!(c.is_tainted(b"k"));
        c.untaint(b"k");
        assert!(c.admit(b"k", frame(8), 3));
    }

    #[test]
    fn clear_goes_cold_but_keeps_counters() {
        let mut c = HotCache::new(10_000, CachePolicyKind::TinyLfu);
        c.touch(b"a");
        assert!(c.admit(b"a", frame(8), 1));
        c.taint(b"t");
        let admits = c.stats.admits;
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert!(!c.is_tainted(b"t"));
        assert_eq!(c.stats.admits, admits, "counters describe the run");
        assert!(c.get(b"a").is_none());
    }

    #[test]
    fn slot_reuse_after_invalidation() {
        let mut c = HotCache::new(10_000, CachePolicyKind::Lru);
        for i in 0..50u32 {
            let k = format!("k{i}");
            assert!(c.admit(k.as_bytes(), frame(8), u64::from(i)));
        }
        for i in 0..50u32 {
            let k = format!("k{i}");
            assert!(c.invalidate(k.as_bytes()));
        }
        for i in 50..100u32 {
            let k = format!("k{i}");
            assert!(c.admit(k.as_bytes(), frame(8), u64::from(i)));
        }
        // Slab never grew past the live population.
        assert!(c.slots.len() <= 50, "slots {} not reused", c.slots.len());
        assert_eq!(c.len(), 50);
    }
}
