//! Transport-agnostic message channels.
//!
//! Server code talks in `(tag, payload)` messages; a [`Channel`] maps those
//! onto either transport:
//!
//! * **RDMA** — the paper's scheme (§III-B): each peer registers a receive
//!   ring Memory Region, the MR handles are exchanged with SEND/RECV right
//!   after RDMA_CM establishes the QP, and every message is then a
//!   `WRITE_WITH_IMM` into the peer's ring (the immediate carries the
//!   message tag, the completion carries where the bytes landed).
//! * **TCP** — a length-prefixed frame stream, used by the original-Redis
//!   baseline.
//!
//! The channel never charges CPU time; the owning actor accounts for WR
//! posting and kernel-stack costs itself, because those costs are exactly
//! what the paper's evaluation is about.

use skv_netsim::{MrId, Net, NodeId, QpId, SendOp, SendWr, TcpConnId, Wc, WcOpcode, WcStatus, RNR_WR_ID};
use skv_simcore::Context;

/// Receive WRs kept posted on an RDMA channel.
const RECV_DEPTH: usize = 128;

/// A `(tag, payload)` message delivered by a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMsg {
    /// Routing tag (see [`crate::protocol::tag`]).
    pub tag: u32,
    /// The bytes.
    pub payload: Vec<u8>,
}

enum TransportState {
    Rdma {
        qp: QpId,
        /// Ring the peer writes into (ours).
        my_ring: MrId,
        /// Ring we write into (theirs), learned via handshake.
        peer_ring: Option<MrId>,
        send_pos: usize,
        ring_size: usize,
        /// Messages queued until the handshake completes.
        pending: Vec<(u32, Vec<u8>)>,
        /// Whether we've sent our MR handle yet.
        handshake_sent: bool,
    },
    Tcp {
        conn: TcpConnId,
        /// Reassembly buffer for inbound frames.
        inbuf: Vec<u8>,
    },
}

/// One end of a connection, over either transport.
pub struct Channel {
    state: TransportState,
    /// Total messages sent (diagnostics).
    pub sent: u64,
    /// Total messages received (diagnostics).
    pub received: u64,
    /// Set when the transport has failed (send-side error completion, post
    /// failure, or closed TCP stream). The owner must tear the connection
    /// down and re-establish it.
    broken: bool,
}

impl Channel {
    /// Wrap a freshly established QP. Registers this side's receive ring,
    /// posts receives, and sends the MR handshake.
    pub fn rdma(
        net: &Net,
        ctx: &mut Context<'_>,
        node: NodeId,
        qp: QpId,
        ring_size: usize,
    ) -> Channel {
        let my_ring = net.register_mr(node, ring_size);
        // A post failure here means the QP died between establishment and
        // channel construction; mark the channel broken so the owner tears
        // it down and redials instead of running with a starved ring.
        let mut recv_failed = false;
        for i in 0..RECV_DEPTH {
            if net.post_recv(qp, i as u64).is_err() {
                recv_failed = true;
                break;
            }
        }
        let mut ch = Channel {
            state: TransportState::Rdma {
                qp,
                my_ring,
                peer_ring: None,
                send_pos: 0,
                ring_size,
                pending: Vec::new(),
                handshake_sent: false,
            },
            sent: 0,
            received: 0,
            broken: recv_failed,
        };
        if !ch.broken {
            ch.send_handshake(net, ctx);
        }
        ch
    }

    /// Wrap a TCP connection endpoint.
    pub fn tcp(conn: TcpConnId) -> Channel {
        Channel {
            state: TransportState::Tcp {
                conn,
                inbuf: Vec::new(),
            },
            sent: 0,
            received: 0,
            broken: false,
        }
    }

    /// Whether the transport has failed and the connection must be
    /// re-established.
    pub fn broken(&self) -> bool {
        self.broken
    }

    /// The RDMA QP backing this channel, if any.
    pub fn qp(&self) -> Option<QpId> {
        match &self.state {
            TransportState::Rdma { qp, .. } => Some(*qp),
            TransportState::Tcp { .. } => None,
        }
    }

    /// The TCP connection backing this channel, if any.
    pub fn tcp_conn(&self) -> Option<TcpConnId> {
        match &self.state {
            TransportState::Tcp { conn, .. } => Some(*conn),
            TransportState::Rdma { .. } => None,
        }
    }

    /// True once messages can flow (RDMA: MR handshake completed).
    pub fn ready(&self) -> bool {
        match &self.state {
            TransportState::Rdma { peer_ring, .. } => peer_ring.is_some(),
            TransportState::Tcp { .. } => true,
        }
    }

    fn send_handshake(&mut self, net: &Net, ctx: &mut Context<'_>) {
        if let TransportState::Rdma {
            qp,
            my_ring,
            handshake_sent,
            ..
        } = &mut self.state
        {
            if !*handshake_sent {
                *handshake_sent = true;
                if net
                    .post_send(
                        ctx,
                        *qp,
                        SendWr {
                            wr_id: u64::MAX - 1,
                            op: SendOp::Send,
                            data: my_ring.0.to_le_bytes().to_vec(),
                        },
                    )
                    .is_err()
                {
                    self.broken = true;
                }
            }
        }
    }

    /// Send a message. Over RDMA this is one `WRITE_WITH_IMM` (one Work
    /// Request — the unit of host CPU cost the paper counts).
    ///
    /// Messages sent before the handshake completes are queued and flushed
    /// on completion.
    pub fn send(&mut self, net: &Net, ctx: &mut Context<'_>, tag: u32, payload: &[u8]) {
        match &mut self.state {
            TransportState::Rdma {
                qp,
                peer_ring,
                send_pos,
                ring_size,
                pending,
                ..
            } => {
                let Some(ring) = *peer_ring else {
                    pending.push((tag, payload.to_vec()));
                    return;
                };
                assert!(
                    payload.len() <= *ring_size,
                    "message of {} bytes exceeds ring of {}",
                    payload.len(),
                    ring_size
                );
                if *send_pos + payload.len() > *ring_size {
                    *send_pos = 0;
                }
                let offset = *send_pos;
                *send_pos += payload.len();
                self.sent += 1;
                if net
                    .post_send(
                        ctx,
                        *qp,
                        SendWr {
                            wr_id: self.sent,
                            op: SendOp::WriteImm {
                                remote_mr: ring,
                                remote_offset: offset,
                                imm: tag,
                            },
                            data: payload.to_vec(),
                        },
                    )
                    .is_err()
                {
                    self.broken = true;
                }
            }
            TransportState::Tcp { conn, .. } => {
                if !net.tcp_is_open(*conn) {
                    self.broken = true;
                    return;
                }
                let mut frame = Vec::with_capacity(payload.len() + 8);
                frame.extend_from_slice(&tag.to_le_bytes());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(payload);
                self.sent += 1;
                net.tcp_send(ctx, *conn, frame);
            }
        }
    }

    /// Process a work completion belonging to this channel's QP.
    /// Returns any application message it carried.
    pub fn on_wc(&mut self, net: &Net, ctx: &mut Context<'_>, wc: &Wc) -> Option<ChannelMsg> {
        let TransportState::Rdma {
            qp,
            my_ring,
            peer_ring,
            pending,
            ..
        } = &mut self.state
        else {
            return None;
        };
        debug_assert_eq!(wc.qp, *qp);
        match wc.opcode {
            WcOpcode::Recv => {
                // An RNR completion has no receive slot to replenish and
                // carries no usable payload.
                if wc.status != WcStatus::Success || wc.wr_id == RNR_WR_ID {
                    return None;
                }
                // The MR handshake: peer's ring handle.
                if peer_ring.is_none() && wc.data.len() == 4 {
                    let raw = read_u32_le(&wc.data)?;
                    *peer_ring = Some(MrId(raw));
                    let queued = std::mem::take(pending);
                    net.post_recv(*qp, wc.wr_id).ok();
                    for (tag, payload) in queued {
                        self.send(net, ctx, tag, &payload);
                    }
                } else {
                    net.post_recv(*qp, wc.wr_id).ok();
                }
                None
            }
            WcOpcode::RecvRdmaWithImm => {
                if wc.status != WcStatus::Success || wc.wr_id == RNR_WR_ID {
                    return None;
                }
                // Replenish the receive slot, then read the landed bytes.
                net.post_recv(*qp, wc.wr_id).ok();
                let payload = net.mr_read(*my_ring, wc.mr_offset, wc.byte_len);
                self.received += 1;
                Some(ChannelMsg {
                    tag: wc.imm,
                    payload,
                })
            }
            // Send-side completions carry no application data, but an
            // error status means the QP is dead.
            WcOpcode::Send | WcOpcode::RdmaWrite | WcOpcode::RdmaRead => {
                if wc.status != WcStatus::Success {
                    self.broken = true;
                }
                None
            }
        }
    }

    /// Process inbound TCP bytes, returning all completed frames.
    pub fn on_tcp_bytes(&mut self, bytes: &[u8]) -> Vec<ChannelMsg> {
        let TransportState::Tcp { inbuf, .. } = &mut self.state else {
            return Vec::new();
        };
        inbuf.extend_from_slice(bytes);
        let mut out = Vec::new();
        let mut pos = 0;
        while inbuf.len() - pos >= 8 {
            let (Some(tag), Some(len)) = (
                read_u32_le(&inbuf[pos..]),
                read_u32_le(&inbuf[pos + 4..]),
            ) else {
                break; // unreachable given the length guard above
            };
            let len = len as usize;
            if inbuf.len() - pos - 8 < len {
                break;
            }
            out.push(ChannelMsg {
                tag,
                payload: inbuf[pos + 8..pos + 8 + len].to_vec(),
            });
            pos += 8 + len;
        }
        inbuf.drain(..pos);
        self.received += out.len() as u64;
        out
    }
}

/// Read a little-endian `u32` from the front of `bytes`, if long enough.
fn read_u32_le(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_framing_roundtrip_fragmented() {
        // Encode three frames, feed byte by byte, expect exact reassembly.
        let tx = Channel::tcp(TcpConnId(0));
        let mut wire = Vec::new();
        // Build frames by hand (send() needs a live fabric; framing is what
        // we're testing).
        for (tag, payload) in [(1u32, &b"abc"[..]), (2, &b""[..]), (900, &[0u8, 255][..])] {
            wire.extend_from_slice(&tag.to_le_bytes());
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }
        let mut rx = Channel::tcp(TcpConnId(1));
        let mut got = Vec::new();
        for b in wire {
            got.extend(rx.on_tcp_bytes(&[b]));
        }
        assert_eq!(
            got,
            vec![
                ChannelMsg {
                    tag: 1,
                    payload: b"abc".to_vec()
                },
                ChannelMsg {
                    tag: 2,
                    payload: Vec::new()
                },
                ChannelMsg {
                    tag: 900,
                    payload: vec![0, 255]
                },
            ]
        );
        let _ = tx;
    }

    #[test]
    fn tcp_channel_reports_identity() {
        let ch = Channel::tcp(TcpConnId(7));
        assert!(ch.ready());
        assert_eq!(ch.tcp_conn(), Some(TcpConnId(7)));
        assert_eq!(ch.qp(), None);
    }
}
