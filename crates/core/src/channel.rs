//! Transport-agnostic message channels.
//!
//! Server code talks in `(tag, payload)` messages; a [`Channel`] maps those
//! onto either transport:
//!
//! * **RDMA** — the paper's scheme (§III-B): each peer registers a receive
//!   ring Memory Region, the MR handles are exchanged with SEND/RECV right
//!   after RDMA_CM establishes the QP, and every message is then a
//!   `WRITE_WITH_IMM` into the peer's ring (the immediate carries the
//!   message tag, the completion carries where the bytes landed).
//! * **TCP** — a length-prefixed frame stream, used by the original-Redis
//!   baseline.
//!
//! The channel never charges CPU time; the owning actor accounts for WR
//! posting and kernel-stack costs itself, because those costs are exactly
//! what the paper's evaluation is about.

use skv_netsim::{
    Frame, MrId, Net, NodeId, QpId, SendOp, SendWr, TcpConnId, Wc, WcOpcode, WcStatus, RNR_WR_ID,
};
use skv_simcore::{Context, FramePool};

/// Receive WRs kept posted on an RDMA channel.
const RECV_DEPTH: usize = 128;

/// A `(tag, payload)` message delivered by a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMsg {
    /// Routing tag (see [`crate::protocol::tag`]).
    pub tag: u32,
    /// The bytes — a zero-copy view of the transport's delivery frame.
    pub payload: Frame,
}

enum TransportState {
    Rdma {
        qp: QpId,
        /// Ring the peer writes into (ours).
        my_ring: MrId,
        /// Ring we write into (theirs), learned via handshake.
        peer_ring: Option<MrId>,
        send_pos: usize,
        ring_size: usize,
        /// Messages queued until the handshake completes.
        pending: Vec<(u32, Frame)>,
        /// Whether we've sent our MR handle yet.
        handshake_sent: bool,
    },
    Tcp {
        conn: TcpConnId,
        /// Reassembly buffer for a partial inbound frame. Bytes before
        /// `consumed` have already been delivered; the cursor advances per
        /// frame and the buffer compacts amortizedly instead of shifting
        /// on every delivery.
        inbuf: Vec<u8>,
        /// Consume cursor into `inbuf`.
        consumed: usize,
    },
}

/// One end of a connection, over either transport.
pub struct Channel {
    state: TransportState,
    /// Total messages sent (diagnostics).
    pub sent: u64,
    /// Total messages received (diagnostics).
    pub received: u64,
    /// Set when the transport has failed (send-side error completion, post
    /// failure, or closed TCP stream). The owner must tear the connection
    /// down and re-establish it.
    broken: bool,
    /// Send-ring pool for TCP wire frames; without one, `send` falls back
    /// to allocating the wire frame per message.
    pool: Option<FramePool>,
    /// Work requests posted by the handshake-completion flush of queued
    /// messages — posts that happen *inside* [`Channel::on_wc`], where the
    /// caller can't observe `send`'s return value. Owners that keep
    /// doorbell/WR statistics collect these via
    /// [`Channel::take_flushed_wrs`] so stats count every WR at actual
    /// post time.
    flushed_wrs: u64,
}

impl Channel {
    /// Wrap a freshly established QP. Registers this side's receive ring,
    /// posts receives, and sends the MR handshake.
    pub fn rdma(
        net: &Net,
        ctx: &mut Context<'_>,
        node: NodeId,
        qp: QpId,
        ring_size: usize,
    ) -> Channel {
        let my_ring = net.register_mr(node, ring_size);
        // A post failure here means the QP died between establishment and
        // channel construction; mark the channel broken so the owner tears
        // it down and redials instead of running with a starved ring.
        let mut recv_failed = false;
        for i in 0..RECV_DEPTH {
            if net.post_recv(qp, i as u64).is_err() {
                recv_failed = true;
                break;
            }
        }
        let mut ch = Channel {
            state: TransportState::Rdma {
                qp,
                my_ring,
                peer_ring: None,
                send_pos: 0,
                ring_size,
                pending: Vec::new(),
                handshake_sent: false,
            },
            sent: 0,
            received: 0,
            broken: recv_failed,
            pool: None,
            flushed_wrs: 0,
        };
        if !ch.broken {
            ch.send_handshake(net, ctx);
        }
        ch
    }

    /// Wrap a TCP connection endpoint.
    pub fn tcp(conn: TcpConnId) -> Channel {
        Channel {
            state: TransportState::Tcp {
                conn,
                inbuf: Vec::new(),
                consumed: 0,
            },
            sent: 0,
            received: 0,
            broken: false,
            pool: None,
            flushed_wrs: 0,
        }
    }

    /// Use `pool` for send-side wire frames (TCP framing): the steady-state
    /// send path then borrows recycled ring buffers instead of allocating.
    pub fn use_pool(&mut self, pool: FramePool) {
        self.pool = Some(pool);
    }

    /// Whether the transport has failed and the connection must be
    /// re-established.
    pub fn broken(&self) -> bool {
        self.broken
    }

    /// The RDMA QP backing this channel, if any.
    pub fn qp(&self) -> Option<QpId> {
        match &self.state {
            TransportState::Rdma { qp, .. } => Some(*qp),
            TransportState::Tcp { .. } => None,
        }
    }

    /// The TCP connection backing this channel, if any.
    pub fn tcp_conn(&self) -> Option<TcpConnId> {
        match &self.state {
            TransportState::Tcp { conn, .. } => Some(*conn),
            TransportState::Rdma { .. } => None,
        }
    }

    /// True once messages can flow (RDMA: MR handshake completed).
    pub fn ready(&self) -> bool {
        match &self.state {
            TransportState::Rdma { peer_ring, .. } => peer_ring.is_some(),
            TransportState::Tcp { .. } => true,
        }
    }

    fn send_handshake(&mut self, net: &Net, ctx: &mut Context<'_>) {
        if let TransportState::Rdma {
            qp,
            my_ring,
            handshake_sent,
            ..
        } = &mut self.state
        {
            if !*handshake_sent {
                *handshake_sent = true;
                if net
                    .post_send(
                        ctx,
                        *qp,
                        SendWr {
                            wr_id: u64::MAX - 1,
                            op: SendOp::Send,
                            data: my_ring.0.to_le_bytes().to_vec().into(),
                        },
                    )
                    .is_err()
                {
                    self.broken = true;
                }
            }
        }
    }

    /// Send a message. Over RDMA this is one `WRITE_WITH_IMM` (one Work
    /// Request — the unit of host CPU cost the paper counts), and the
    /// payload frame rides to the wire by refcount: sending one frame to
    /// N channels costs N refcount bumps, not N copies.
    ///
    /// Messages sent before the handshake completes are queued and flushed
    /// on completion.
    ///
    /// Returns the number of RDMA work requests rung *right now* — 1 when
    /// the WRITE_WITH_IMM was posted, 0 when the message was queued behind
    /// the handshake, failed to post, or went over TCP (no WRs). Owners
    /// keeping WR statistics count this at the call site and pick up the
    /// deferred posts later via [`Channel::take_flushed_wrs`].
    pub fn send(
        &mut self,
        net: &Net,
        ctx: &mut Context<'_>,
        tag: u32,
        payload: impl Into<Frame>,
    ) -> usize {
        let payload: Frame = payload.into();
        if let TransportState::Tcp { conn, .. } = &self.state {
            let conn = *conn;
            if !net.tcp_is_open(conn) {
                self.broken = true;
                return 0;
            }
            // The header's length field is u32; a payload that cannot be
            // framed poisons the channel instead of truncating on the wire.
            let Ok(len) = u32::try_from(payload.len()) else {
                self.broken = true;
                return 0;
            };
            // One header+payload copy into the wire frame — the model's
            // stand-in for the kernel socket copy the TCP baseline pays.
            // With a pool attached the destination buffer is a recycled
            // send ring instead of a fresh allocation.
            let build = |frame: &mut Vec<u8>| {
                frame.extend_from_slice(&tag.to_le_bytes());
                frame.extend_from_slice(&len.to_le_bytes());
                frame.extend_from_slice(&payload);
            };
            let frame = match &self.pool {
                Some(pool) => pool.build(build),
                None => {
                    let mut vec = Vec::with_capacity(payload.len() + 8);
                    build(&mut vec);
                    Frame::from_vec(vec)
                }
            };
            self.sent += 1;
            net.tcp_send(ctx, conn, frame);
            return 0;
        }
        if let Some((qp, wr)) = self.build_wr(tag, payload) {
            if net.post_send(ctx, qp, wr).is_err() {
                self.broken = true;
            } else {
                return 1;
            }
        }
        0
    }

    /// Take (and reset) the count of work requests posted by handshake
    /// flushes inside [`Channel::on_wc`]. Each flushed message was its own
    /// `post_send` — one doorbell, one WR — so the count feeds both stats.
    pub fn take_flushed_wrs(&mut self) -> u64 {
        std::mem::take(&mut self.flushed_wrs)
    }

    /// Stage — without ringing a doorbell — the `WRITE_WITH_IMM` work
    /// request that [`Channel::send`] would post for `(tag, payload)`,
    /// advancing the ring cursor and `sent` bookkeeping identically.
    /// Callers collect staged WRs from several channels into one
    /// [`Net::post_send_batch`] call: the doorbell-batched fan-out. A
    /// failed batch entry must be reported back via
    /// [`Channel::mark_broken`].
    ///
    /// Returns `None` (queueing the message, exactly as `send` does) while
    /// the MR handshake is outstanding — and `None` for TCP channels,
    /// which have no work requests; callers check [`Channel::qp`] and use
    /// `send` there instead.
    pub fn build_wr(&mut self, tag: u32, payload: impl Into<Frame>) -> Option<(QpId, SendWr)> {
        let payload: Frame = payload.into();
        let TransportState::Rdma {
            qp,
            peer_ring,
            send_pos,
            ring_size,
            pending,
            ..
        } = &mut self.state
        else {
            return None;
        };
        let Some(ring) = *peer_ring else {
            pending.push((tag, payload));
            return None;
        };
        assert!(
            payload.len() <= *ring_size,
            "message of {} bytes exceeds ring of {}",
            payload.len(),
            ring_size
        );
        if *send_pos + payload.len() > *ring_size {
            *send_pos = 0;
        }
        let offset = *send_pos;
        *send_pos += payload.len();
        self.sent += 1;
        Some((
            *qp,
            SendWr {
                wr_id: self.sent,
                op: SendOp::WriteImm {
                    remote_mr: ring,
                    remote_offset: offset,
                    imm: tag,
                },
                data: payload,
            },
        ))
    }

    /// Record a send-side transport failure observed outside the channel —
    /// a batched post returning an error for this channel's staged WR.
    pub fn mark_broken(&mut self) {
        self.broken = true;
    }

    /// Process a work completion belonging to this channel's QP.
    /// Returns any application message it carried.
    pub fn on_wc(&mut self, net: &Net, ctx: &mut Context<'_>, wc: &Wc) -> Option<ChannelMsg> {
        let TransportState::Rdma {
            qp,
            my_ring,
            peer_ring,
            pending,
            ..
        } = &mut self.state
        else {
            return None;
        };
        debug_assert_eq!(wc.qp, *qp);
        match wc.opcode {
            WcOpcode::Recv => {
                // An RNR completion has no receive slot to replenish and
                // carries no usable payload.
                if wc.status != WcStatus::Success || wc.wr_id == RNR_WR_ID {
                    return None;
                }
                // The MR handshake: peer's ring handle.
                if peer_ring.is_none() && wc.data.len() == 4 {
                    let raw = read_u32_le(&wc.data)?;
                    *peer_ring = Some(MrId(raw));
                    let queued = std::mem::take(pending);
                    net.post_recv(*qp, wc.wr_id).ok();
                    for (tag, payload) in queued {
                        let posted = self.send(net, ctx, tag, payload);
                        self.flushed_wrs += posted as u64;
                    }
                } else {
                    net.post_recv(*qp, wc.wr_id).ok();
                }
                None
            }
            WcOpcode::RecvRdmaWithImm => {
                if wc.status != WcStatus::Success || wc.wr_id == RNR_WR_ID {
                    return None;
                }
                // Replenish the receive slot. The completion carries the
                // written bytes as a zero-copy view; the same bytes are in
                // the ring MR (the debug assertion audits that), so taking
                // the view skips the mr_read copy-out.
                net.post_recv(*qp, wc.wr_id).ok();
                debug_assert_eq!(
                    wc.data,
                    net.mr_read(*my_ring, wc.mr_offset, wc.byte_len),
                    "completion payload diverged from ring contents"
                );
                self.received += 1;
                Some(ChannelMsg {
                    tag: wc.imm,
                    payload: wc.data.clone(),
                })
            }
            // Send-side completions carry no application data, but an
            // error status means the QP is dead.
            WcOpcode::Send | WcOpcode::RdmaWrite | WcOpcode::RdmaRead => {
                if wc.status != WcStatus::Success {
                    self.broken = true;
                }
                None
            }
        }
    }

    /// Process inbound TCP bytes, returning all completed frames.
    ///
    /// Fast path (nothing buffered): frames are delivered as zero-copy
    /// sub-views of the incoming segment and only a trailing partial frame
    /// is buffered. Buffered path: the segment is appended and frames are
    /// consumed behind a cursor; the buffer compacts only when consumed
    /// bytes dominate it, so total reassembly cost is linear in bytes
    /// received rather than quadratic in frames per buffer.
    pub fn on_tcp_bytes(&mut self, bytes: Frame) -> Vec<ChannelMsg> {
        let TransportState::Tcp {
            inbuf, consumed, ..
        } = &mut self.state
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut poisoned = false;
        if inbuf.len() == *consumed {
            inbuf.clear();
            *consumed = 0;
            let mut pos = 0;
            loop {
                let rest = bytes.get(pos..).unwrap_or_default();
                match parse_header(rest) {
                    Header::Frame { tag, len } if rest.len() - 8 >= len => {
                        out.push(ChannelMsg {
                            tag,
                            payload: bytes.slice(pos + 8..pos + 8 + len),
                        });
                        pos += 8 + len;
                    }
                    Header::Frame { .. } | Header::Incomplete => break,
                    Header::Oversized => {
                        poisoned = true;
                        break;
                    }
                }
            }
            match bytes.get(pos..) {
                Some(rest) if !rest.is_empty() && !poisoned => {
                    inbuf.extend_from_slice(rest);
                }
                _ => {}
            }
        } else {
            inbuf.extend_from_slice(&bytes);
            loop {
                let rest = inbuf.get(*consumed..).unwrap_or_default();
                match parse_header(rest) {
                    Header::Frame { tag, len } if rest.len() - 8 >= len => {
                        let start = *consumed + 8;
                        let Some(chunk) = inbuf.get(start..start + len) else {
                            break;
                        };
                        out.push(ChannelMsg {
                            tag,
                            payload: Frame::copy_from_slice(chunk),
                        });
                        *consumed = start + len;
                    }
                    Header::Frame { .. } | Header::Incomplete => break,
                    Header::Oversized => {
                        poisoned = true;
                        break;
                    }
                }
            }
            if poisoned || *consumed == inbuf.len() {
                inbuf.clear();
                *consumed = 0;
            } else if *consumed * 2 >= inbuf.len() {
                // Amortized compaction: consumed bytes are the majority,
                // so this copy is charged against the frames already
                // delivered from them.
                inbuf.copy_within(*consumed.., 0);
                inbuf.truncate(inbuf.len() - *consumed);
                *consumed = 0;
            }
        }
        if poisoned {
            // A length the peer could never legitimately send: treat the
            // stream as corrupt rather than buffering toward a claimed
            // multi-gigabyte frame. The owner's watchdog reconnects.
            self.broken = true;
        }
        self.received += out.len() as u64;
        out
    }
}

/// Largest payload a frame header may claim. Real messages top out at the
/// replication ring size (kilobytes); anything near u32::MAX is stream
/// corruption, and buffering toward it would be an allocation attack in a
/// real deployment.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Outcome of parsing a `[u32 tag][u32 len]` frame header.
enum Header {
    /// Fewer than 8 bytes available.
    Incomplete,
    /// A complete header claiming `len` payload bytes (possibly not yet
    /// all received).
    Frame {
        /// Message tag.
        tag: u32,
        /// Claimed payload length, already bounded by [`MAX_FRAME_LEN`].
        len: usize,
    },
    /// A complete header whose claimed length exceeds [`MAX_FRAME_LEN`]:
    /// the stream is corrupt.
    Oversized,
}

/// Parse a frame header off the front of `bytes`.
fn parse_header(bytes: &[u8]) -> Header {
    let (Some(tag), Some(len)) = (read_u32_le(bytes), bytes.get(4..).and_then(read_u32_le)) else {
        return Header::Incomplete;
    };
    let len = len as usize;
    if len > MAX_FRAME_LEN {
        return Header::Oversized;
    }
    Header::Frame { tag, len }
}

/// Read a little-endian `u32` from the front of `bytes`, if long enough.
fn read_u32_le(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny literals
mod tests {
    use super::*;

    /// Hand-build a wire image of `(tag, payload)` frames (send() needs a
    /// live fabric; framing is what these tests exercise).
    fn wire_of(frames: &[(u32, &[u8])]) -> Vec<u8> {
        let mut wire = Vec::new();
        for &(tag, payload) in frames {
            wire.extend_from_slice(&tag.to_le_bytes());
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }
        wire
    }

    fn expect_msgs(frames: &[(u32, &[u8])]) -> Vec<ChannelMsg> {
        frames
            .iter()
            .map(|&(tag, payload)| ChannelMsg {
                tag,
                payload: payload.into(),
            })
            .collect()
    }

    const FRAMES: &[(u32, &[u8])] = &[(1, b"abc"), (2, b""), (900, &[0u8, 255])];

    #[test]
    fn tcp_framing_roundtrip_fragmented() {
        // Feed byte by byte — every delivery takes the buffered path with a
        // partial frame outstanding — and expect exact reassembly.
        let wire = wire_of(FRAMES);
        let mut rx = Channel::tcp(TcpConnId(1));
        let mut got = Vec::new();
        for b in wire {
            got.extend(rx.on_tcp_bytes(Frame::copy_from_slice(&[b])));
        }
        assert_eq!(got, expect_msgs(FRAMES));
    }

    #[test]
    fn tcp_framing_single_delivery_fast_path() {
        // The whole wire in one segment: every payload comes back as a
        // zero-copy view and nothing is left buffered.
        let wire = wire_of(FRAMES);
        let mut rx = Channel::tcp(TcpConnId(1));
        let got = rx.on_tcp_bytes(wire.into());
        assert_eq!(got, expect_msgs(FRAMES));
        assert_eq!(rx.on_tcp_bytes(Frame::new()), Vec::new());
    }

    #[test]
    fn tcp_framing_mixed_fast_and_buffered_paths() {
        // A segment carrying one full frame plus half of the next forces
        // the fast path to stash a tail, the following segment takes the
        // buffered path, and a final aligned segment returns to fast path.
        let frames: Vec<(u32, Vec<u8>)> = (0..6u32)
            .map(|i| (i + 10, vec![i as u8; 5 + i as usize * 3]))
            .collect();
        let borrowed: Vec<(u32, &[u8])> = frames.iter().map(|(t, p)| (*t, p.as_slice())).collect();
        let wire = wire_of(&borrowed);
        // Split points chosen to land mid-header, mid-payload, and on a
        // frame boundary.
        for cuts in [vec![13, 14, 30], vec![3, 50], vec![8, 16, 24, 32]] {
            let mut rx = Channel::tcp(TcpConnId(1));
            let mut got = Vec::new();
            let mut at = 0;
            for cut in cuts.iter().copied().filter(|&c| c < wire.len()) {
                got.extend(rx.on_tcp_bytes(Frame::copy_from_slice(&wire[at..cut])));
                at = cut;
            }
            got.extend(rx.on_tcp_bytes(Frame::copy_from_slice(&wire[at..])));
            assert_eq!(got, expect_msgs(&borrowed), "cuts failed");
        }
    }

    #[test]
    fn tcp_reassembly_compacts_consumed_prefix() {
        // Stream many frames through a permanently misaligned buffer; the
        // consume-cursor path must keep the residual buffer bounded by a
        // couple of frames rather than the whole history.
        let frames: Vec<(u32, Vec<u8>)> = (0..200u32).map(|i| (i, vec![i as u8; 64])).collect();
        let borrowed: Vec<(u32, &[u8])> = frames.iter().map(|(t, p)| (*t, p.as_slice())).collect();
        let wire = wire_of(&borrowed);
        let mut rx = Channel::tcp(TcpConnId(1));
        let mut got = Vec::new();
        // 71 is coprime with the 72-byte frame size: every segment
        // boundary lands mid-frame, so the buffered path runs constantly.
        for seg in wire.chunks(71) {
            got.extend(rx.on_tcp_bytes(Frame::copy_from_slice(seg)));
            let TransportState::Tcp { inbuf, .. } = &rx.state else {
                unreachable!()
            };
            assert!(
                inbuf.len() <= 4 * 72,
                "residual buffer grew to {} bytes",
                inbuf.len()
            );
        }
        assert_eq!(got, expect_msgs(&borrowed));
    }

    #[test]
    fn tcp_fast_path_payload_is_zero_copy_view() {
        let wire = wire_of(&[(7, b"payload bytes here")]);
        let frame = Frame::from(wire);
        let mut rx = Channel::tcp(TcpConnId(1));
        let got = rx.on_tcp_bytes(frame.clone());
        assert_eq!(got.len(), 1);
        // A view of the same backing buffer compares equal to the slice the
        // sender framed — and took no allocation to produce.
        assert_eq!(got[0].payload, frame.slice(8..));
    }

    #[test]
    fn tcp_channel_reports_identity() {
        let ch = Channel::tcp(TcpConnId(7));
        assert!(ch.ready());
        assert_eq!(ch.tcp_conn(), Some(TcpConnId(7)));
        assert_eq!(ch.qp(), None);
    }

    /// A header claiming a payload longer than [`MAX_FRAME_LEN`] (e.g.
    /// `u32::MAX`, the value a truncating length cast would have written
    /// for a 4 GiB + 3 byte payload) must poison the channel — not panic,
    /// and not buffer gigabytes waiting for a frame that never completes.
    #[test]
    fn oversized_frame_length_breaks_channel_fast_path() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&5u32.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"tail bytes that must not be hoarded");
        let mut rx = Channel::tcp(TcpConnId(1));
        let got = rx.on_tcp_bytes(wire.into());
        assert!(got.is_empty());
        assert!(rx.broken());
        let TransportState::Tcp { inbuf, .. } = &rx.state else {
            unreachable!()
        };
        assert!(inbuf.is_empty(), "poisoned stream must not keep buffering");
    }

    /// Same corruption arriving after a valid frame, split so the bad
    /// header takes the buffered path: the good frame is delivered, the
    /// stream then breaks.
    #[test]
    fn oversized_frame_length_breaks_channel_buffered_path() {
        let mut wire = wire_of(&[(3, b"ok")]);
        wire.extend_from_slice(&9u32.to_le_bytes());
        wire.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        let mut rx = Channel::tcp(TcpConnId(1));
        let mut got = Vec::new();
        for seg in wire.chunks(7) {
            got.extend(rx.on_tcp_bytes(Frame::copy_from_slice(seg)));
        }
        assert_eq!(got, expect_msgs(&[(3, b"ok")]));
        assert!(rx.broken());
    }

    /// The largest legal length is still parsed as a frame header (and
    /// simply waits for its payload), so the bound does not reject real
    /// traffic.
    #[test]
    fn max_frame_len_boundary_is_accepted() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32).to_le_bytes());
        let mut rx = Channel::tcp(TcpConnId(1));
        assert!(rx.on_tcp_bytes(wire.into()).is_empty());
        assert!(!rx.broken());
    }
}
