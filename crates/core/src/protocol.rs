//! The inter-node wire protocol.
//!
//! Everything that crosses the network is real bytes. Client↔server traffic
//! is RESP (inherited from Redis); node↔node coordination uses the compact
//! binary frames defined here, mirroring the messages of the paper's
//! Figures 8 and 9: initial-sync requests, sync notifications, RDB chunks,
//! steady-state replication requests, probes, and progress reports.

use skv_netsim::SocketAddr;
use skv_store::repl::{ReplicationId, ReplicationPosition};

use crate::replmode::ReplModeKind;

/// Message tags carried in the RDMA immediate field (and as the first byte
/// of TCP frames) to route payloads without peeking inside.
pub mod tag {
    /// RESP command from a client.
    pub const CMD: u32 = 1;
    /// RESP reply to a client.
    pub const REPLY: u32 = 2;
    /// A [`super::NodeMsg`] coordination frame.
    pub const NODE: u32 = 3;
    /// A chunk of replication stream bytes (RESP-encoded write commands).
    pub const REPL_STREAM: u32 = 4;
    /// A chunk of an RDB snapshot transfer.
    pub const RDB_CHUNK: u32 = 5;
    /// A client command proxied by the Nic-KV cache front-end to the
    /// host master: `[u64 cookie][RESP command bytes]`. The cookie maps
    /// the out-of-order shard replies back to the originating client
    /// connection on the NIC.
    pub const FWD_CMD: u32 = 6;
    /// The host master's reply to a proxied command, echoing the
    /// cookie: `[u64 cookie][RESP reply bytes]`.
    pub const FWD_REPLY: u32 = 7;
}

/// Total number of hash slots in the keyspace (Redis Cluster's constant:
/// CRC16 of the key, modulo 16384).
pub const NUM_SLOTS: usize = 16384;

/// CRC16/XMODEM (poly 0x1021, init 0x0000, no reflection) — the exact
/// checksum Redis Cluster uses for slot assignment, computed bitwise so
/// the implementation is obviously table-free and allocation-free.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Map a key to its hash slot. Honors Redis Cluster hash tags: if the key
/// contains a non-empty `{...}` section, only the bytes between the first
/// `{` and the first following `}` are hashed, so callers can pin related
/// keys (`user:{42}:name`, `user:{42}:age`) to one slot and keep
/// multi-key commands single-shard.
pub fn key_hash_slot(key: &[u8]) -> u16 {
    let hashed = match key.iter().position(|&b| b == b'{') {
        Some(open) => {
            let rest = key.get(open + 1..).unwrap_or(&[]);
            match rest.iter().position(|&b| b == b'}') {
                // Empty tags (`{}`) hash the whole key, like Redis.
                Some(0) | None => key,
                Some(close) => rest.get(..close).unwrap_or(key),
            }
        }
        None => key,
    };
    crc16(hashed) % 0x4000
}

/// Map a slot to its owning shard: contiguous ranges of
/// `ceil(NUM_SLOTS / num_shards)` slots, the same split `CLUSTER
/// ADDSLOTS` setups conventionally use. With one shard everything maps
/// to shard 0.
pub fn slot_shard(slot: u16, num_shards: usize) -> usize {
    if num_shards <= 1 {
        return 0;
    }
    let per_shard = NUM_SLOTS.div_ceil(num_shards);
    (usize::from(slot) / per_shard).min(num_shards - 1)
}

/// Node-to-node coordination messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMsg {
    /// Slave → Nic-KV (or master in baseline modes): start initial sync
    /// (paper Fig. 8 ①). Carries the slave's replication position, its
    /// listen address, and the master's address as the slave knows it.
    SyncRequest {
        /// Who is asking (the slave's server address).
        slave: SocketAddr,
        /// The slave's current replication position.
        position: ReplicationPosition,
    },
    /// Nic-KV → master Host-KV: a slave wants to synchronize (Fig. 8 ②).
    SyncNotify {
        /// The slave's server address.
        slave: SocketAddr,
        /// The slave's replication position.
        position: ReplicationPosition,
    },
    /// Master → slave: header before a full RDB transfer. `total_bytes` of
    /// RDB_CHUNK frames follow; the slave's new position after loading is
    /// `(repl_id, start_offset)`.
    FullSyncBegin {
        /// The master's replication history id.
        repl_id: ReplicationId,
        /// The replication offset the snapshot corresponds to.
        start_offset: u64,
        /// Total RDB bytes that will follow in chunks.
        total_bytes: u64,
    },
    /// Master → slave: partial resynchronization accepted; REPL_STREAM
    /// frames covering `[from_offset, to_offset)` follow.
    PartialSyncBegin {
        /// The master's replication history id.
        repl_id: ReplicationId,
        /// First byte offset being sent.
        from_offset: u64,
        /// One past the last byte offset being sent.
        to_offset: u64,
    },
    /// Master Host-KV → Nic-KV: replicate these stream bytes to all valid
    /// slaves (Fig. 9 ①). The single message whose posting cost replaces
    /// N per-slave posts — the core of the offload.
    Replicate {
        /// Offset of the first byte in `stream` within the master history.
        from_offset: u64,
    },
    /// Slave → Nic-KV (relayed to master) or slave → master: replication
    /// progress report (Fig. 9 ③).
    ProgressReport {
        /// The reporting slave.
        slave: SocketAddr,
        /// Bytes of the master history applied so far.
        offset: u64,
    },
    /// Nic-KV → any node: liveness probe (§III-D).
    Probe {
        /// Sequence number echoed in the reply.
        seq: u64,
    },
    /// Any node → Nic-KV: probe reply.
    ProbeReply {
        /// Echoed sequence number.
        seq: u64,
        /// The responder's server address.
        from: SocketAddr,
    },
    /// Nic-KV → master Host-KV: the health of the slave set changed;
    /// carries the valid-slave count (drives `min-slaves` rejection) and
    /// whether any valid slave lags beyond the configured bound (§III-C:
    /// "if the progress is too slow … return an error message").
    SlaveSetUpdate {
        /// Number of slaves currently considered alive.
        available: u32,
        /// True when a *valid* slave's replication lag exceeds the bound.
        lagging: bool,
    },
    /// Nic-KV → slave: you are promoted to master (master failover).
    Promote,
    /// Nic-KV → node: step down to slave (original master returned).
    Demote,
    /// First message on a freshly opened coordination channel, so the
    /// receiver can label the connection before any other traffic.
    Hello {
        /// The sender's server address.
        from: SocketAddr,
        /// True when the sender is the master Host-KV.
        is_master: bool,
    },
    /// Slave → Nic-KV (chain mode): cumulative *applied* offset. Unlike
    /// the periodic `ProgressReport`, this is sent eagerly after every
    /// apply batch, because a chain hop only advances once the previous
    /// hop has durably applied — not merely received — the segment.
    WriteAck {
        /// The acking slave.
        slave: SocketAddr,
        /// Bytes of the master history applied so far.
        offset: u64,
    },
    /// Nic-KV → master Host-KV (quorum/chain modes): every write whose
    /// end offset is ≤ `upto` has committed under the active replication
    /// mode; the master may release the deferred client replies it
    /// covers.
    WriteCommitted {
        /// Cumulative committed replication offset.
        upto: u64,
    },
    /// Nic-KV → master Host-KV (cross-mode failover): the replication
    /// guarantee in force changed at runtime. Demotion to `Async`
    /// releases every deferred reply (the degradation point is declared,
    /// not silent); re-promotion to the configured mode resumes
    /// deferring from the next write on.
    ModeChange {
        /// The replication mode now in force.
        mode: ReplModeKind,
    },
}

impl NodeMsg {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            NodeMsg::SyncRequest { slave, position } => {
                out.push(0);
                put_addr(&mut out, *slave);
                put_position(&mut out, *position);
            }
            NodeMsg::SyncNotify { slave, position } => {
                out.push(1);
                put_addr(&mut out, *slave);
                put_position(&mut out, *position);
            }
            NodeMsg::FullSyncBegin {
                repl_id,
                start_offset,
                total_bytes,
            } => {
                out.push(2);
                out.extend_from_slice(&repl_id.0);
                out.extend_from_slice(&start_offset.to_le_bytes());
                out.extend_from_slice(&total_bytes.to_le_bytes());
            }
            NodeMsg::PartialSyncBegin {
                repl_id,
                from_offset,
                to_offset,
            } => {
                out.push(3);
                out.extend_from_slice(&repl_id.0);
                out.extend_from_slice(&from_offset.to_le_bytes());
                out.extend_from_slice(&to_offset.to_le_bytes());
            }
            NodeMsg::Replicate { from_offset } => {
                out.push(4);
                out.extend_from_slice(&from_offset.to_le_bytes());
            }
            NodeMsg::ProgressReport { slave, offset } => {
                out.push(5);
                put_addr(&mut out, *slave);
                out.extend_from_slice(&offset.to_le_bytes());
            }
            NodeMsg::Probe { seq } => {
                out.push(6);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            NodeMsg::ProbeReply { seq, from } => {
                out.push(7);
                out.extend_from_slice(&seq.to_le_bytes());
                put_addr(&mut out, *from);
            }
            NodeMsg::SlaveSetUpdate { available, lagging } => {
                out.push(8);
                out.extend_from_slice(&available.to_le_bytes());
                out.push(u8::from(*lagging));
            }
            NodeMsg::Promote => out.push(9),
            NodeMsg::Demote => out.push(10),
            NodeMsg::Hello { from, is_master } => {
                out.push(11);
                put_addr(&mut out, *from);
                out.push(u8::from(*is_master));
            }
            NodeMsg::WriteAck { slave, offset } => {
                out.push(12);
                put_addr(&mut out, *slave);
                out.extend_from_slice(&offset.to_le_bytes());
            }
            NodeMsg::WriteCommitted { upto } => {
                out.push(13);
                out.extend_from_slice(&upto.to_le_bytes());
            }
            NodeMsg::ModeChange { mode } => {
                out.push(14);
                out.push(mode.code());
            }
        }
        out
    }

    /// Decode from bytes.
    pub fn decode(buf: &[u8]) -> Option<NodeMsg> {
        let mut pos = 1;
        match *buf.first()? {
            0 => Some(NodeMsg::SyncRequest {
                slave: get_addr(buf, &mut pos)?,
                position: get_position(buf, &mut pos)?,
            }),
            1 => Some(NodeMsg::SyncNotify {
                slave: get_addr(buf, &mut pos)?,
                position: get_position(buf, &mut pos)?,
            }),
            2 => Some(NodeMsg::FullSyncBegin {
                repl_id: get_repl_id(buf, &mut pos)?,
                start_offset: get_u64(buf, &mut pos)?,
                total_bytes: get_u64(buf, &mut pos)?,
            }),
            3 => Some(NodeMsg::PartialSyncBegin {
                repl_id: get_repl_id(buf, &mut pos)?,
                from_offset: get_u64(buf, &mut pos)?,
                to_offset: get_u64(buf, &mut pos)?,
            }),
            4 => Some(NodeMsg::Replicate {
                from_offset: get_u64(buf, &mut pos)?,
            }),
            5 => Some(NodeMsg::ProgressReport {
                slave: get_addr(buf, &mut pos)?,
                offset: get_u64(buf, &mut pos)?,
            }),
            6 => Some(NodeMsg::Probe {
                seq: get_u64(buf, &mut pos)?,
            }),
            7 => Some(NodeMsg::ProbeReply {
                seq: get_u64(buf, &mut pos)?,
                from: get_addr(buf, &mut pos)?,
            }),
            8 => {
                let available = get_u32(buf, &mut pos)?;
                let lagging = *buf.get(pos)? != 0;
                Some(NodeMsg::SlaveSetUpdate { available, lagging })
            }
            9 => Some(NodeMsg::Promote),
            10 => Some(NodeMsg::Demote),
            11 => {
                let from = get_addr(buf, &mut pos)?;
                let is_master = *buf.get(pos)? != 0;
                Some(NodeMsg::Hello { from, is_master })
            }
            12 => Some(NodeMsg::WriteAck {
                slave: get_addr(buf, &mut pos)?,
                offset: get_u64(buf, &mut pos)?,
            }),
            13 => Some(NodeMsg::WriteCommitted {
                upto: get_u64(buf, &mut pos)?,
            }),
            14 => Some(NodeMsg::ModeChange {
                mode: ReplModeKind::from_code(*buf.get(pos)?)?,
            }),
            _ => None,
        }
    }
}

fn put_addr(out: &mut Vec<u8>, addr: SocketAddr) {
    out.extend_from_slice(&addr.node.0.to_le_bytes());
    out.extend_from_slice(&addr.port.to_le_bytes());
}

fn get_addr(buf: &[u8], pos: &mut usize) -> Option<SocketAddr> {
    let node = get_u32(buf, pos)?;
    let port = get_u16(buf, pos)?;
    Some(SocketAddr::new(skv_netsim::NodeId(node), port))
}

fn put_position(out: &mut Vec<u8>, p: ReplicationPosition) {
    out.extend_from_slice(&p.repl_id.0);
    out.extend_from_slice(&p.offset.to_le_bytes());
}

fn get_position(buf: &[u8], pos: &mut usize) -> Option<ReplicationPosition> {
    Some(ReplicationPosition {
        repl_id: get_repl_id(buf, pos)?,
        offset: get_u64(buf, pos)?,
    })
}

fn get_repl_id(buf: &[u8], pos: &mut usize) -> Option<ReplicationId> {
    let end = *pos + 20;
    let bytes: [u8; 20] = buf.get(*pos..end)?.try_into().ok()?;
    *pos = end;
    Some(ReplicationId(bytes))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let end = *pos + 8;
    let v = u64::from_le_bytes(buf.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let end = *pos + 4;
    let v = u32::from_le_bytes(buf.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

fn get_u16(buf: &[u8], pos: &mut usize) -> Option<u16> {
    let end = *pos + 2;
    let v = u16::from_le_bytes(buf.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skv_netsim::NodeId;

    fn addr(n: u32, p: u16) -> SocketAddr {
        SocketAddr::new(NodeId(n), p)
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            NodeMsg::SyncRequest {
                slave: addr(2, 6379),
                position: ReplicationPosition::unsynced(),
            },
            NodeMsg::SyncNotify {
                slave: addr(3, 6380),
                position: ReplicationPosition {
                    repl_id: ReplicationId::from_seed(7),
                    offset: 12345,
                },
            },
            NodeMsg::FullSyncBegin {
                repl_id: ReplicationId::from_seed(1),
                start_offset: 99,
                total_bytes: 1 << 30,
            },
            NodeMsg::PartialSyncBegin {
                repl_id: ReplicationId::from_seed(2),
                from_offset: 10,
                to_offset: 20,
            },
            NodeMsg::Replicate { from_offset: 777 },
            NodeMsg::ProgressReport {
                slave: addr(4, 1),
                offset: u64::MAX,
            },
            NodeMsg::Probe { seq: 42 },
            NodeMsg::ProbeReply {
                seq: 42,
                from: addr(9, 9),
            },
            NodeMsg::SlaveSetUpdate {
                available: 3,
                lagging: false,
            },
            NodeMsg::SlaveSetUpdate {
                available: 0,
                lagging: true,
            },
            NodeMsg::Promote,
            NodeMsg::Demote,
            NodeMsg::Hello {
                from: addr(1, 7000),
                is_master: true,
            },
            NodeMsg::Hello {
                from: addr(5, 6379),
                is_master: false,
            },
            NodeMsg::WriteAck {
                slave: addr(6, 6379),
                offset: 987_654,
            },
            NodeMsg::WriteCommitted { upto: u64::MAX - 1 },
            NodeMsg::ModeChange {
                mode: ReplModeKind::Async,
            },
            NodeMsg::ModeChange {
                mode: ReplModeKind::Quorum,
            },
            NodeMsg::ModeChange {
                mode: ReplModeKind::Chain,
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert_eq!(NodeMsg::decode(&bytes), Some(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn crc16_matches_redis_reference_vector() {
        // The vector Redis itself documents for CRC16/XMODEM.
        assert_eq!(crc16(b"123456789"), 0x31C3);
        // 0x31C3 < NUM_SLOTS, so the slot equals the raw CRC here.
        assert_eq!(key_hash_slot(b"123456789"), 0x31C3);
    }

    #[test]
    fn hash_tags_pin_related_keys_to_one_slot() {
        assert_eq!(
            key_hash_slot(b"user:{42}:name"),
            key_hash_slot(b"user:{42}:age")
        );
        assert_eq!(key_hash_slot(b"user:{42}:name"), key_hash_slot(b"42"));
        // Empty and unterminated tags hash the whole key.
        assert_eq!(key_hash_slot(b"a{}b"), crc16(b"a{}b") % 0x4000);
        assert_eq!(key_hash_slot(b"a{b"), crc16(b"a{b") % 0x4000);
        // Only the first tag counts.
        assert_eq!(key_hash_slot(b"{a}{b}"), key_hash_slot(b"a"));
    }

    #[test]
    fn slot_shard_partitions_every_slot_exactly_once() {
        for shards in [1usize, 2, 3, 4, 7, 8, 16] {
            let mut counts = vec![0u32; shards];
            for slot in 0..NUM_SLOTS {
                let s = slot_shard(u16::try_from(slot).unwrap(), shards);
                assert!(s < shards, "slot {slot} → shard {s} out of range");
                counts[s] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "{shards} shards: some shard owns no slots ({counts:?})"
            );
            let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
            let per = u32::try_from(NUM_SLOTS.div_ceil(shards)).unwrap();
            assert!(
                spread <= per,
                "{shards} shards: uneven split {counts:?} (spread {spread})"
            );
        }
        assert_eq!(slot_shard(16383, 1), 0);
        assert_eq!(slot_shard(16383, 4), 3);
        assert_eq!(slot_shard(0, 4), 0);
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert_eq!(NodeMsg::decode(&[]), None);
        assert_eq!(NodeMsg::decode(&[255]), None);
        assert_eq!(NodeMsg::decode(&[0, 1]), None, "truncated");
        assert_eq!(NodeMsg::decode(&[2, 0, 0]), None, "truncated repl id");
        assert_eq!(NodeMsg::decode(&[14]), None, "truncated mode change");
        assert_eq!(NodeMsg::decode(&[14, 9]), None, "unknown mode code");
    }
}
