//! Host-KV: the server process running on a host (master or slave).
//!
//! One actor type plays every server role in every mode:
//!
//! * **master** — executes client commands on a single-threaded event loop
//!   (core 0), feeds the replication backlog, and propagates write commands:
//!   * `TcpRedis` / `RdmaRedis`: sends the stream to each synced slave
//!     itself, one message (= one Work Request, = one chunk of host CPU)
//!     per slave per command — the serial fan-out §V-C blames for the
//!     degradation of Figure 7;
//!   * `Skv`: sends **one** replication request to Nic-KV (Figure 9 ①) and
//!     immediately returns to serving clients;
//! * **slave** — runs the initial synchronization of Figure 8 (request via
//!   Nic-KV, RDB or backlog transfer from the master), then applies the
//!   replication stream and reports progress.
//!
//! Replication stream frames carry the master-history offset of their first
//! byte, so receivers deduplicate overlaps (sync rides concurrently with
//! steady-state fan-out) and detect gaps (a crashed-and-recovered slave
//! re-requests synchronization from its last applied offset).

use skv_netsim::{CqId, DetMap, Frame, Net, NetEvent, NodeId, QpId, SocketAddr, TcpConnId};
use skv_simcore::{
    Actor, ActorId, Context, CorePool, DetRng, FramePool, Payload, SimDuration, SimTime,
};
use skv_store::backlog::Backlog;
use skv_store::cmd::CommandSpec;
use skv_store::db::Db;
use skv_store::engine::{Engine, ExecResult};
use skv_store::rdb;
use skv_store::repl::{ReplicationId, ReplicationPosition};
use skv_store::resp::{Decoded, Resp};

use std::collections::VecDeque;

use crate::channel::{Channel, ChannelMsg};
use crate::config::{ClusterConfig, Mode};
use crate::cqdrain;
use crate::protocol::{tag, NodeMsg};
use crate::replmode::{self, ReplModeKind};
use crate::shard::{ApplyRing, RoutePlan, ShardRouter, APPLY_RING_CAP, CROSS_SHARD_HOP};

/// Maximum bytes per RDB transfer chunk.
const RDB_CHUNK: usize = 64 * 1024;
/// Maximum bytes per backlog-range replication frame (after the header).
const STREAM_CHUNK: usize = 32 * 1024;

/// Most stream frames a slave keeps stashed while a sync is in flight.
/// Anything dropped past the cap is re-sent by the resync stream itself.
const STASH_CAP: usize = 1024;

/// External control events injected by the harness.
#[derive(Debug, Clone)]
pub enum Control {
    /// Make this server a slave of `master`; in SKV mode `nic` is the
    /// master's Nic-KV address to send the sync request to (Fig. 8 ①).
    Slaveof {
        /// The master's Host-KV address.
        master: SocketAddr,
        /// The master's Nic-KV address, if offloading is in use.
        nic: Option<SocketAddr>,
    },
    /// Crash this server (stops responding; its node drops traffic).
    Crash,
    /// Recover from a crash; a synced slave re-requests synchronization.
    Recover,
    /// Master only: open the channel to its Nic-KV (SKV mode).
    ConnectNic {
        /// The Nic-KV address on the SmartNIC SoC.
        nic: SocketAddr,
    },
}

/// Messages the server schedules to itself.
enum ServerMsg {
    /// Cron tick: expire cycle, rehash, progress report.
    Cron,
    /// CPU work finished; emit the prepared frames.
    SendFrames(Vec<OutFrame>),
    /// The RDB persist (on the background core) completed.
    PersistDone {
        slave: SocketAddr,
        position: ReplicationPosition,
        snapshot: Vec<u8>,
        start_offset: u64,
    },
    /// Backoff expired: retry the dial recorded in `intents` for `to`.
    Redial { to: SocketAddr },
}

struct OutFrame {
    conn: usize,
    tag: u32,
    payload: Frame,
}

/// A client reply the master is holding until the replication mode
/// commits the covering offset (quorum/chain modes only).
struct PendingReply {
    /// Backlog offset one past the write this reply acknowledges.
    end_offset: u64,
    conn: usize,
    /// `REPLY` for a direct client, `FWD_REPLY` (cookie-framed payload)
    /// for a command relayed by the SoC front-end.
    tag: u32,
    payload: Frame,
}

/// What a connection is for (learned from traffic or connect intent).
enum ConnKind {
    Unknown,
    Client,
    /// The master's channel to its Nic-KV.
    Nic,
    /// A master's channel to one synced slave.
    Slave {
        addr: SocketAddr,
        reported_offset: u64,
    },
    /// A slave's channel from/to its master.
    Master,
}

struct ConnState {
    channel: Channel,
    kind: ConnKind,
    open: bool,
    /// The listen address we dialled (outbound conns only; inbound peers
    /// show an ephemeral port we can't route back to).
    peer: Option<SocketAddr>,
}

/// Why we are dialling out, keyed by remote address.
enum ConnectIntent {
    /// Master → slave, to run the initial sync; frames to send when ready.
    SyncSlave { frames: Vec<(u32, Frame)> },
    /// To the coordination upstream — the master dialling its Nic-KV, or a
    /// slave dialling Nic-KV (SKV) / the master (baselines); frames to send
    /// once the channel is ready.
    SyncUpstream { frames: Vec<(u32, Frame)> },
}

/// Replication role.
enum Role {
    Master,
    Slave {
        master: SocketAddr,
        nic: Option<SocketAddr>,
        syncing: bool,
        /// RDB accumulation during a full sync.
        rdb_expect: u64,
        rdb_buf: Vec<u8>,
        rdb_start_offset: u64,
        /// Stream frames that arrived while syncing or beyond a gap
        /// (zero-copy views of the delivery frames).
        stash: Vec<(u64, Frame)>,
        /// Guard so a detected gap triggers at most one resync at a time.
        resyncing: bool,
    },
}

/// The Host-KV server actor.
pub struct KvServer {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    addr: SocketAddr,
    /// One CQ per shard; `cqs[0]` is the primary (listen/dial) CQ and the
    /// only one at `num_shards = 1`. Inbound accepts round-robin across
    /// the set, and each CQ's drain loop runs on its shard's core.
    cqs: Vec<CqId>,
    /// Round-robin cursor for spreading accepted QPs over `cqs`.
    accept_cursor: usize,
    cpu: CorePool,
    /// One engine per shard; `engines[0]` is the whole store at
    /// `num_shards = 1` and holds shard 0's slot range otherwise.
    engines: Vec<Engine>,
    /// Slot-range router over `cfg.num_shards` shards.
    router: ShardRouter,
    /// Sharded slave apply pipeline: bounded ring between the parse core
    /// and the apply core (unused at `num_shards = 1`).
    apply_ring: ApplyRing,
    /// Monotonic floor for REPL_STREAM emission times: shard cores finish
    /// out of order, but the stream must leave in backlog-offset order.
    repl_egress_at: SimTime,
    /// Commands executed per shard (`shard.ops`).
    shard_ops: Vec<u64>,
    /// Cross-shard fragment handoffs (`shard.cross_msgs`).
    shard_cross_msgs: u64,
    backlog: Backlog,
    repl_id: ReplicationId,
    role: Role,
    conns: Vec<ConnState>,
    by_qp: DetMap<QpId, usize>,
    by_tcp: DetMap<TcpConnId, usize>,
    intents: DetMap<SocketAddr, ConnectIntent>,
    /// Slaves considered available (from Nic-KV updates, or own census in
    /// baseline modes). Drives `min-slaves` rejection.
    available_slaves: usize,
    /// Whether any synced slave lags more than `max_slave_lag` bytes.
    lag_exceeded: bool,
    crashed: bool,
    /// Remembered SLAVEOF target so a promoted slave can rejoin on Demote.
    prior_slave_of: Option<(SocketAddr, Option<SocketAddr>)>,
    /// Master (SKV): Nic-KV is unreachable, replication fan-out runs
    /// host-driven (RDMA-Redis style) until the SoC comes back.
    degraded: bool,
    /// Degradation windows `(entered, exited)` for timeline reports.
    pub degraded_periods: Vec<(SimTime, Option<SimTime>)>,
    /// Master: remembered ConnectNic target for redials after NIC death.
    nic_addr: Option<SocketAddr>,
    /// Master: last traffic seen from Nic-KV (silence ⇒ degrade).
    nic_last_seen: Option<SimTime>,
    /// Slave: last traffic seen from the coordination upstream.
    upstream_last_seen: Option<SimTime>,
    /// Consecutive failed dials per target, for exponential backoff.
    reconnect_attempts: DetMap<SocketAddr, u32>,
    /// Rate limit for cron-driven upstream redials.
    next_upstream_retry: SimTime,
    /// When the last SyncRequest left, so cron can re-issue one that got
    /// lost in flight (e.g. relayed through a Nic-KV with no master link).
    sync_request_at: Option<SimTime>,
    /// Seeded from `seed` at construction, replaced by a split of the
    /// simulation RNG in `on_start` (so actor start order matters, not OS
    /// state). Never absent — no unwrap on the command path.
    rng: DetRng,
    started: bool,
    /// Statistics: commands executed, replication frames sent, etc.
    pub stat_commands: u64,
    /// Write commands rejected due to `min-slaves` or lag.
    pub stat_rejected: u64,
    /// Stream bytes applied (slave side).
    pub stat_applied_bytes: u64,
    /// Full syncs served (master) or performed (slave).
    pub stat_full_syncs: u64,
    /// Partial syncs served (master) or performed (slave).
    pub stat_partial_syncs: u64,
    /// Dial retries issued after connect failures.
    pub stat_reconnects: u64,
    /// Connections torn down after transport errors.
    pub stat_conn_errors: u64,
    /// Times the master fell back to host-driven fan-out (SKV mode).
    pub stat_degradations: u64,
    /// Doorbells rung by the command path (reply + replication posts; one
    /// per `post_send` call, one per batch in `batch_wr_posts` mode).
    pub stat_doorbells: u64,
    /// WRs posted by the command path — identical whether batched or not;
    /// batching amortizes doorbells, never work requests.
    pub stat_wrs_posted: u64,
    /// Master, deferred modes: replies held back for commit, FIFO by
    /// `end_offset` (the backlog only grows, so pushes are ordered).
    pending_replies: VecDeque<PendingReply>,
    /// Master, deferred modes: highest offset Nic-KV reported committed.
    commit_upto: u64,
    /// Slave, chain mode: highest applied offset already WriteAck'd.
    last_write_ack: u64,
    /// Client replies deferred behind replication commit (quorum/chain).
    pub stat_deferred_replies: u64,
    /// Deferred replies released after a commit or census advance.
    pub stat_released_replies: u64,
    /// The replication mode currently in force. Equals `cfg.repl_mode`
    /// unless a `NodeMsg::ModeChange` from Nic-KV moved it (the
    /// `mode_failover` degrade/re-promote path).
    active_mode: ReplModeKind,
    /// Mode transitions applied from `NodeMsg::ModeChange`.
    pub stat_mode_changes: u64,
    /// Send-ring pool for wire frames (TCP framing) and replication
    /// stream frames; shared by every channel this server owns.
    pool: FramePool,
}

impl KvServer {
    /// Create a server bound to `addr` on `node`.
    pub fn new(net: Net, cfg: ClusterConfig, node: NodeId, addr: SocketAddr, seed: u64) -> Self {
        let num_shards = cfg.num_shards.max(1);
        // One core per shard plus the background persist core; the legacy
        // single-shard floor of 2 is unchanged.
        let cores = cfg.machines.host_cores.max(num_shards + 1).max(2);
        // Shard 0 keeps the historical seed byte-for-byte; extra shards
        // derive theirs so no shared RNG draw order changes.
        let engines = (0..num_shards)
            .map(|s| {
                if s == 0 {
                    Engine::new(seed)
                } else {
                    Engine::new(seed ^ (0x51AD_0000 + s as u64))
                }
            })
            .collect();
        KvServer {
            net,
            node,
            addr,
            cqs: Vec::new(),
            accept_cursor: 0,
            cpu: CorePool::new(cores, cfg.machines.host_core_speed),
            engines,
            router: ShardRouter::new(num_shards),
            apply_ring: ApplyRing::new(APPLY_RING_CAP),
            repl_egress_at: SimTime::ZERO,
            shard_ops: vec![0; num_shards],
            shard_cross_msgs: 0,
            backlog: Backlog::new(cfg.backlog_size),
            repl_id: ReplicationId::from_seed(seed ^ 0xCAFE),
            role: Role::Master,
            conns: Vec::new(),
            by_qp: DetMap::new(),
            by_tcp: DetMap::new(),
            intents: DetMap::new(),
            available_slaves: 0,
            lag_exceeded: false,
            crashed: false,
            prior_slave_of: None,
            degraded: false,
            degraded_periods: Vec::new(),
            nic_addr: None,
            nic_last_seen: None,
            upstream_last_seen: None,
            reconnect_attempts: DetMap::new(),
            next_upstream_retry: SimTime::ZERO,
            sync_request_at: None,
            rng: DetRng::new(seed ^ 0xD1CE),
            started: false,
            active_mode: cfg.repl_mode,
            stat_mode_changes: 0,
            cfg,
            stat_commands: 0,
            stat_rejected: 0,
            stat_applied_bytes: 0,
            stat_full_syncs: 0,
            stat_partial_syncs: 0,
            stat_reconnects: 0,
            stat_conn_errors: 0,
            stat_degradations: 0,
            stat_doorbells: 0,
            stat_wrs_posted: 0,
            pending_replies: VecDeque::new(),
            commit_upto: 0,
            last_write_ack: 0,
            stat_deferred_replies: 0,
            stat_released_replies: 0,
            // Sized for a typical wire frame (4 KiB value + headers); the
            // slab keeps enough buffers for a deep pipeline of in-flight
            // sends and grown buffers keep their capacity when recycled.
            pool: FramePool::new(4096 + 64, 256),
        }
    }

    /// The send-ring pool (tests assert the steady-state hit rate here).
    pub fn send_pool(&self) -> &FramePool {
        &self.pool
    }

    /// Is the master currently running host-driven fallback fan-out
    /// because its Nic-KV is unreachable?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// This server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shard 0's engine (the whole store at `num_shards = 1`), for test
    /// inspection.
    pub fn engine(&self) -> &Engine {
        &self.engines[0]
    }

    /// Mutable access to shard 0's engine, for tests that poke state
    /// directly. Sharded callers should use [`KvServer::preload`], which
    /// routes by key. Mutations made this way bypass the backlog, so they
    /// only reach slaves through a subsequent full sync.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engines[0]
    }

    /// Execute a command at simulated time zero, routed to the owning
    /// shard(s) — for preloading data in tests, examples, and benches
    /// *before* replication starts. Bypasses the backlog like
    /// [`KvServer::engine_mut`] did.
    pub fn preload(&mut self, parts: &[&str]) -> ExecResult {
        let args: Vec<Vec<u8>> = parts.iter().map(|p| p.as_bytes().to_vec()).collect();
        let (result, _, _) = self.execute_routed(0, &args);
        result
    }

    /// Stable fingerprint of the full logical keyspace, merged across
    /// shards (equal to the single engine's digest at `num_shards = 1`).
    pub fn keyspace_digest(&self) -> u64 {
        let engines: Vec<&Engine> = self.engines.iter().collect();
        Engine::keyspace_digest_merged(&engines)
    }

    /// All shard engines, shard 0 first (one entry at `num_shards = 1`).
    pub fn engines(&self) -> &[Engine] {
        &self.engines
    }

    /// Commands executed per shard (the `shard.ops` counters).
    pub fn shard_ops(&self) -> &[u64] {
        &self.shard_ops
    }

    /// Cross-shard fragment handoffs performed (`shard.cross_msgs`).
    pub fn shard_cross_msgs(&self) -> u64 {
        self.shard_cross_msgs
    }

    /// Deepest occupancy the slave apply ring reached
    /// (`shard.queue_depth`; 0 unless this server applied a stream with
    /// `num_shards > 1`).
    pub fn apply_queue_depth(&self) -> u64 {
        u64::try_from(self.apply_ring.max_depth).unwrap_or(u64::MAX)
    }

    /// Master replication offset.
    pub fn repl_offset(&self) -> u64 {
        self.backlog.offset()
    }

    /// This server's replication position (slave view).
    pub fn position(&self) -> ReplicationPosition {
        ReplicationPosition {
            repl_id: self.repl_id,
            offset: self.backlog.offset(),
        }
    }

    /// Is this server currently acting as a master?
    pub fn is_master(&self) -> bool {
        matches!(self.role, Role::Master)
    }

    /// Is a slave fully synchronized?
    pub fn is_synced_slave(&self) -> bool {
        matches!(self.role, Role::Slave { syncing: false, .. })
    }

    /// Mean utilization of the event-loop core over the run so far.
    pub fn core0_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(0, now)
    }

    fn now_ms(ctx: &Context<'_>) -> u64 {
        ctx.now().as_nanos() / 1_000_000
    }

    fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    // -- connection plumbing -------------------------------------------------

    fn add_conn(
        &mut self,
        mut channel: Channel,
        kind: ConnKind,
        peer: Option<SocketAddr>,
    ) -> usize {
        channel.use_pool(self.pool.clone());
        let idx = self.conns.len();
        if let Some(qp) = channel.qp() {
            self.by_qp.insert(qp, idx);
        }
        if let Some(tc) = channel.tcp_conn() {
            self.by_tcp.insert(tc, idx);
        }
        self.conns.push(ConnState {
            channel,
            kind,
            open: true,
            peer,
        });
        idx
    }

    fn send_on(&mut self, ctx: &mut Context<'_>, conn: usize, tag: u32, payload: impl Into<Frame>) {
        if !self.conns[conn].open {
            return;
        }
        let net = self.net.clone();
        self.conns[conn].channel.send(&net, ctx, tag, payload);
        if self.conns[conn].channel.broken() {
            self.on_conn_broken(ctx, conn);
        }
    }

    fn dial(&mut self, ctx: &mut Context<'_>, to: SocketAddr, intent: ConnectIntent) {
        self.intents.insert(to, intent);
        self.connect_to(ctx, to);
    }

    fn conn_of_kind(&self, pred: impl Fn(&ConnKind) -> bool) -> Option<usize> {
        self.conns.iter().position(|c| c.open && pred(&c.kind))
    }

    fn synced_slave_conns(&self) -> Vec<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.open && matches!(c.kind, ConnKind::Slave { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    fn open_conn_to(&self, addr: SocketAddr) -> Option<usize> {
        self.conns
            .iter()
            .position(|c| c.open && c.peer == Some(addr))
    }

    // -- failure handling ----------------------------------------------------

    /// Close a connection and release its transport resources.
    fn close_conn(&mut self, conn: usize) {
        if !self.conns[conn].open {
            return;
        }
        self.conns[conn].open = false;
        if let Some(qp) = self.conns[conn].channel.qp() {
            self.net.destroy_qp(qp);
        }
    }

    /// A connection's transport failed: tear it down and start whatever
    /// recovery its role requires.
    fn on_conn_broken(&mut self, ctx: &mut Context<'_>, conn: usize) {
        if !self.conns[conn].open {
            return;
        }
        self.stat_conn_errors += 1;
        self.close_conn(conn);
        match self.conns[conn].kind {
            ConnKind::Nic if self.is_master() && self.cfg.mode == Mode::Skv => {
                // The channel to Nic-KV died: fall back to host-driven
                // fan-out and keep redialling until the SoC returns.
                self.enter_degraded(ctx.now());
                self.redial_nic(ctx);
            }
            ConnKind::Nic | ConnKind::Master => {
                // A slave lost its upstream: re-request sync from the
                // current offset (served from the backlog when possible).
                self.schedule_upstream_resync(ctx);
            }
            _ => {} // clients and slave conns re-establish themselves
        }
    }

    fn enter_degraded(&mut self, now: SimTime) {
        if self.cfg.mode != Mode::Skv || !self.is_master() || self.degraded {
            return;
        }
        self.degraded = true;
        self.stat_degradations += 1;
        self.degraded_periods.push((now, None));
        // Stop queueing frames on the dead NIC channel.
        if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Nic)) {
            self.close_conn(conn);
        }
    }

    fn exit_degraded(&mut self, now: SimTime) {
        if !self.degraded {
            return;
        }
        self.degraded = false;
        if let Some(last) = self.degraded_periods.last_mut() {
            last.1 = Some(now);
        }
    }

    /// Master: dial the remembered Nic-KV address again (no-op while a dial
    /// for it is already pending).
    fn redial_nic(&mut self, ctx: &mut Context<'_>) {
        let Some(nic) = self.nic_addr else { return };
        if self.intents.contains_key(&nic) {
            return;
        }
        let hello = NodeMsg::Hello {
            from: self.addr,
            is_master: true,
        }
        .encode();
        self.dial(
            ctx,
            nic,
            ConnectIntent::SyncUpstream {
                frames: vec![(tag::NODE, hello.into())],
            },
        );
    }

    /// Slave: re-request synchronization from the current offset.
    fn schedule_upstream_resync(&mut self, ctx: &mut Context<'_>) {
        let Role::Slave { resyncing, .. } = &mut self.role else {
            return;
        };
        *resyncing = false;
        // Restart the silence clock so we don't double-trigger.
        self.upstream_last_seen = Some(ctx.now());
        let pos = ReplicationPosition {
            repl_id: self.repl_id,
            offset: self.slave_offset(),
        };
        self.send_sync_request(ctx, pos);
    }

    /// A dial failed: back off exponentially and retry, giving up after a
    /// bounded number of attempts (cron re-seeds long-lived intents).
    fn on_connect_failed(&mut self, ctx: &mut Context<'_>, to: SocketAddr) {
        if !self.intents.contains_key(&to) {
            return;
        }
        let attempts = {
            let e = self.reconnect_attempts.or_insert(to, 0);
            *e += 1;
            *e
        };
        // A slave that cannot reach Nic-KV and has no working upstream at
        // all falls back to syncing straight from the master.
        if let Role::Slave {
            master,
            nic: Some(nic),
            ..
        } = &self.role
        {
            let (master, nic) = (*master, *nic);
            if to == nic
                && attempts >= 2
                && master != nic
                && !self.intents.contains_key(&master)
                && self.open_conn_to(master).is_none()
                && self
                    .conn_of_kind(|k| matches!(k, ConnKind::Master))
                    .is_none()
            {
                if let Some(intent) = self.intents.remove(&to) {
                    self.reconnect_attempts.remove(&to);
                    self.intents.insert(master, intent);
                    ctx.timer(self.cfg.reconnect_base, ServerMsg::Redial { to: master });
                    return;
                }
            }
        }
        if attempts > self.cfg.reconnect_max_attempts {
            self.intents.remove(&to);
            self.reconnect_attempts.remove(&to);
            return;
        }
        let delay = self.cfg.reconnect_delay(attempts);
        ctx.timer(delay, ServerMsg::Redial { to });
    }

    /// Re-issue the transport connect for an intent that is still wanted.
    fn connect_to(&mut self, ctx: &mut Context<'_>, to: SocketAddr) {
        let me = ctx.id();
        if self.cfg.mode.uses_rdma() {
            let Some(&cq) = self.cqs.first() else {
                // Dial before on_start created the CQ: surface it as a
                // failed connect so the backoff machinery retries.
                ctx.send(me, NetEvent::CmConnectFailed { to });
                return;
            };
            self.net.rdma_connect(ctx, self.node, me, cq, to);
        } else {
            self.net.tcp_connect(ctx, self.node, me, to);
        }
    }

    // -- command path --------------------------------------------------------

    /// Handle one client command frame (TAG_CMD).
    fn on_client_command(&mut self, ctx: &mut Context<'_>, conn: usize, payload: Frame) {
        if matches!(self.conns[conn].kind, ConnKind::Unknown) {
            self.conns[conn].kind = ConnKind::Client;
        }
        self.run_command(ctx, conn, payload, None);
    }

    /// Handle one SoC-relayed command frame (TAG_FWD_CMD): an 8-byte LE
    /// cookie followed by the original RESP command. The connection keeps
    /// its Nic kind — the front-end multiplexes many clients over it.
    fn on_forwarded_command(&mut self, ctx: &mut Context<'_>, conn: usize, payload: &Frame) {
        let Some(header) = payload.get(..8) else {
            return;
        };
        let Ok(cookie_bytes) = <[u8; 8]>::try_from(header) else {
            return;
        };
        let cookie = u64::from_le_bytes(cookie_bytes);
        let body: Frame = payload[8..].to_vec().into();
        self.run_command(ctx, conn, body, Some(cookie));
    }

    /// The shared command path behind both entry points. `fwd` carries a
    /// relay cookie when the command came through the SoC front-end; its
    /// reply then leaves as a cookie-framed `FWD_REPLY` on `conn`.
    fn run_command(&mut self, ctx: &mut Context<'_>, conn: usize, payload: Frame, fwd: Option<u64>) {
        let args = match Resp::decode(&payload) {
            Decoded::Frame(v, _) => match v.into_command_args() {
                Ok(args) => args,
                Err(e) => {
                    let reply = Resp::err(e).encode();
                    self.finish_command(ctx, conn, payload.len(), reply, None, (0, SimDuration::ZERO), fwd);
                    return;
                }
            },
            _ => {
                let reply = Resp::err("protocol error").encode();
                self.finish_command(ctx, conn, payload.len(), reply, None, (0, SimDuration::ZERO), fwd);
                return;
            }
        };

        // min-slaves / lag write gating (paper §III-C, §III-D).
        let spec = skv_store::cmd::lookup(&args[0]);
        let is_write_cmd = spec.is_some_and(CommandSpec::is_write);
        if is_write_cmd && self.write_gate_blocked() {
            self.stat_rejected += 1;
            let reply = Resp::Error("NOREPLICAS Not enough good replicas to write".into()).encode();
            self.finish_command(ctx, conn, payload.len(), reply, None, (0, SimDuration::ZERO), fwd);
            return;
        }

        let (result, shard, cross_cost) = self.execute_routed(Self::now_ms(ctx), &args);
        self.stat_commands += 1;
        let replicate = if result.should_replicate() {
            // The *original* command bytes are replicated even for split
            // executions; slaves re-route them with the same slot map.
            Some(payload.clone())
        } else {
            None
        };
        let reply = result.reply.encode();
        self.finish_command(ctx, conn, payload.len(), reply, replicate, (shard, cross_cost), fwd);
    }

    /// Execute one command against the shard set: route to the owning
    /// shard, or split/broadcast a cross-shard command and merge replies.
    /// Returns the merged result, the primary shard (whose core pays the
    /// command cost), and the inter-shard hop cost (zero unless the
    /// command actually crossed shards). With one shard this is exactly
    /// the historical single-engine call.
    fn execute_routed(
        &mut self,
        now_ms: u64,
        args: &[Vec<u8>],
    ) -> (ExecResult, usize, SimDuration) {
        if self.engines.len() == 1 {
            self.shard_ops[0] += 1;
            return (self.engines[0].execute(now_ms, args), 0, SimDuration::ZERO);
        }
        let plan = self.router.plan(args);
        match plan {
            RoutePlan::Single(shard) => {
                self.shard_ops[shard] += 1;
                (self.engines[shard].execute(now_ms, args), shard, SimDuration::ZERO)
            }
            RoutePlan::Broadcast => {
                let mut merged: Option<ExecResult> = None;
                for shard in 0..self.engines.len() {
                    self.shard_ops[shard] += 1;
                    let r = self.engines[shard].execute(now_ms, args);
                    merged = Some(match merged {
                        None => r,
                        Some(mut acc) => {
                            acc.dirty_delta += r.dirty_delta;
                            acc.bytes_touched += r.bytes_touched;
                            acc
                        }
                    });
                }
                let hops = self.engines.len() - 1;
                self.shard_cross_msgs += hops as u64;
                let result = merged.unwrap_or_else(|| ExecResult {
                    reply: Resp::ok(),
                    dirty_delta: 0,
                    is_write: true,
                    bytes_touched: 0,
                });
                (result, 0, CROSS_SHARD_HOP * (hops as u64))
            }
            RoutePlan::SplitPairs => self.execute_split_pairs(now_ms, args),
            RoutePlan::SplitSum | RoutePlan::SplitGather => {
                self.execute_split_keys(now_ms, args, plan == RoutePlan::SplitGather)
            }
            RoutePlan::CrossSlot => {
                let reply =
                    Resp::Error("CROSSSLOT Keys in request don't hash to the same slot".into());
                let shard = args.get(1).map_or(0, |k| self.router.shard_of_key(k));
                (
                    ExecResult {
                        reply,
                        dirty_delta: 0,
                        is_write: false,
                        bytes_touched: 0,
                    },
                    shard,
                    SimDuration::ZERO,
                )
            }
        }
    }

    /// MSET split: partition the `key value` pairs by owning shard and
    /// run one sub-MSET per shard (ascending shard order, so the schedule
    /// is a pure function of the key set).
    fn execute_split_pairs(
        &mut self,
        now_ms: u64,
        args: &[Vec<u8>],
    ) -> (ExecResult, usize, SimDuration) {
        let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); self.engines.len()];
        for pair in args[1..].chunks(2) {
            if let [key, value] = pair {
                let shard = self.router.shard_of_key(key);
                per_shard[shard].push(key.clone());
                per_shard[shard].push(value.clone());
            }
        }
        let primary = args.get(1).map_or(0, |k| self.router.shard_of_key(k));
        let mut dirty = 0u64;
        let mut bytes = 0usize;
        let mut touched = 0usize;
        for (shard, mut sub) in per_shard.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            touched += 1;
            self.shard_ops[shard] += 1;
            let mut sub_args = Vec::with_capacity(sub.len() + 1);
            sub_args.push(args[0].clone());
            sub_args.append(&mut sub);
            let r = self.engines[shard].execute(now_ms, &sub_args);
            dirty += r.dirty_delta;
            bytes += r.bytes_touched;
        }
        let hops = touched.saturating_sub(1);
        self.shard_cross_msgs += hops as u64;
        (
            ExecResult {
                reply: Resp::ok(),
                dirty_delta: dirty,
                is_write: true,
                bytes_touched: bytes,
            },
            primary,
            CROSS_SHARD_HOP * (hops as u64),
        )
    }

    /// Per-key split for DEL/UNLINK/EXISTS (summed integer replies) and
    /// MGET (replies gathered back in original key order).
    fn execute_split_keys(
        &mut self,
        now_ms: u64,
        args: &[Vec<u8>],
        gather: bool,
    ) -> (ExecResult, usize, SimDuration) {
        let keys = &args[1..];
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
        for (i, key) in keys.iter().enumerate() {
            per_shard[self.router.shard_of_key(key)].push(i);
        }
        let primary = keys.first().map_or(0, |k| self.router.shard_of_key(k));
        let mut sum = 0i64;
        let mut slots: Vec<Resp> = vec![Resp::NullBulk; if gather { keys.len() } else { 0 }];
        let mut dirty = 0u64;
        let mut bytes = 0usize;
        let mut is_write = false;
        let mut touched = 0usize;
        for (shard, indices) in per_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            touched += 1;
            self.shard_ops[shard] += 1;
            let mut sub_args = Vec::with_capacity(indices.len() + 1);
            sub_args.push(args[0].clone());
            for &i in indices {
                sub_args.push(keys[i].clone());
            }
            let r = self.engines[shard].execute(now_ms, &sub_args);
            dirty += r.dirty_delta;
            bytes += r.bytes_touched;
            is_write |= r.is_write;
            match r.reply {
                Resp::Int(n) => sum += n,
                Resp::Array(items) if gather => {
                    for (slot, item) in indices.iter().zip(items) {
                        slots[*slot] = item;
                    }
                }
                _ => {}
            }
        }
        let reply = if gather {
            Resp::Array(slots)
        } else {
            Resp::Int(sum)
        };
        let hops = touched.saturating_sub(1);
        self.shard_cross_msgs += hops as u64;
        (
            ExecResult {
                reply,
                dirty_delta: dirty,
                is_write,
                bytes_touched: bytes,
            },
            primary,
            CROSS_SHARD_HOP * (hops as u64),
        )
    }

    fn write_gate_blocked(&self) -> bool {
        if !self.is_master() {
            return false; // slaves reject writes elsewhere (read-only is
                          // not enforced: the paper's slaves serve reads)
        }
        // While degraded (Nic-KV dead) the master cannot trust stale NIC
        // updates; fall back to its own census, like the baselines.
        let available = if self.cfg.mode == Mode::Skv && !self.degraded {
            self.available_slaves
        } else {
            self.synced_slave_conns().len()
        };
        if self.cfg.min_slaves > 0 && available < self.cfg.min_slaves {
            return true;
        }
        self.lag_exceeded
    }

    /// Account CPU for a command and schedule its reply + replication.
    /// `route` is `(shard, cross_cost)`: the core that executed the command
    /// (always 0 unsharded) and the inter-shard hop overhead a split
    /// command paid.
    #[allow(clippy::too_many_arguments)]
    fn finish_command(
        &mut self,
        ctx: &mut Context<'_>,
        conn: usize,
        req_bytes: usize,
        reply: Vec<u8>,
        replicate: Option<Frame>,
        route: (usize, SimDuration),
        fwd: Option<u64>,
    ) {
        let (shard, cross_cost) = route;
        let costs = &self.cfg.costs;
        let net_p = &self.cfg.net;
        let payload_kib = req_bytes as f64 / 1024.0;

        let mut cost = costs.cmd_base + costs.cmd_per_kib.mul_f64(payload_kib) + cross_cost;
        let mut wr_posts = 0u32; // WQEs built (the unit of replication work)
        let mut doorbells = 0u32; // post calls; each may stall (tail model)
        let mut frames: Vec<OutFrame> = Vec::with_capacity(2);

        // Quorum/chain modes hold a replicated write's reply until the NIC
        // commits the covering offset; its post cost is charged on release
        // (`release_ready_replies`), not here. Async keeps the original
        // immediate-reply schedule bit for bit.
        let defer = replicate.is_some()
            && self.is_master()
            && replmode::replication_mode(self.active_mode).defers_replies();
        // A forwarded command's reply is re-framed with its relay cookie
        // and leaves under FWD_REPLY.
        let (reply_tag, reply_frame): (u32, Frame) = match fwd {
            Some(cookie) => {
                let mut framed = Vec::with_capacity(8 + reply.len());
                framed.extend_from_slice(&cookie.to_le_bytes());
                framed.extend_from_slice(&reply);
                (tag::FWD_REPLY, framed.into())
            }
            None => (tag::REPLY, reply.into()),
        };
        let reply_len = reply_frame.len();

        // Transport costs for receiving the request and posting the reply.
        match self.cfg.mode {
            Mode::TcpRedis => {
                cost += net_p.tcp_recv_cost(req_bytes);
                if !defer {
                    cost += net_p.tcp_send_cost(reply_len);
                }
            }
            Mode::RdmaRedis | Mode::Skv => {
                // Completion-side CPU (cq_poll_cpu + wc_handle_cpu) is
                // charged where polling happens — the CqNotify drain —
                // not per command; here only the reply's WR post.
                if !defer {
                    cost += net_p.wr_post_cpu;
                    wr_posts += 1;
                    doorbells += 1;
                }
            }
        }
        // A forwarded *dirty* command's ack must chase its own stream
        // frame down the master→NIC channel (the front-end invalidates
        // off the stream before relaying acks), so its reply frame is
        // appended after the replication block instead of here. Direct
        // replies keep the seed's reply-first order bit for bit.
        let reply_after_stream = fwd.is_some() && replicate.is_some();
        if !defer && !reply_after_stream {
            frames.push(OutFrame {
                conn,
                tag: reply_tag,
                payload: reply_frame.clone(),
            });
        }

        // Replication propagation (the heart of the experiment).
        if let Some(cmd_bytes) = replicate {
            let from_offset = self.backlog.offset();
            self.backlog.feed(&cmd_bytes);
            if defer {
                self.stat_deferred_replies += 1;
                self.pending_replies.push_back(PendingReply {
                    end_offset: self.backlog.offset(),
                    conn,
                    tag: reply_tag,
                    payload: reply_frame.clone(),
                });
            }
            // The stream frame is built in a recycled send-ring buffer —
            // no allocation on the steady-state path — and every recipient
            // below clones the Frame, so N-slave fan-out is N refcount
            // bumps of this one buffer.
            let frame: Frame = self.pool.build(|out| {
                out.extend_from_slice(&from_offset.to_le_bytes());
                out.extend_from_slice(&cmd_bytes);
            });
            match self.cfg.mode {
                Mode::Skv => {
                    // One request to Nic-KV, regardless of slave count
                    // (Figure 9 ①): a single WR post on the host. When the
                    // SoC is dead (degraded mode, or the channel simply
                    // isn't up) the master falls back to RDMA-Redis-style
                    // fan-out so writes keep replicating.
                    let nic_conn = if self.degraded {
                        None
                    } else {
                        self.conn_of_kind(|k| matches!(k, ConnKind::Nic))
                    };
                    if let Some(nic) = nic_conn {
                        cost += net_p.wr_post_cpu;
                        wr_posts += 1;
                        doorbells += 1;
                        frames.push(OutFrame {
                            conn: nic,
                            tag: tag::REPL_STREAM,
                            payload: frame,
                        });
                    } else {
                        let slaves = self.synced_slave_conns();
                        cost += self.host_fanout_cost(slaves.len());
                        wr_posts += u32::try_from(slaves.len()).unwrap_or(u32::MAX);
                        doorbells += self.fanout_doorbells(slaves.len());
                        for slave in slaves {
                            frames.push(OutFrame {
                                conn: slave,
                                tag: tag::REPL_STREAM,
                                payload: frame.clone(),
                            });
                        }
                    }
                }
                Mode::RdmaRedis => {
                    // One WR post per slave on the event loop — the CPU the
                    // paper measures RDMA-Redis burning. Serial doorbells
                    // by default; one linked post list when batching is on.
                    let slaves = self.synced_slave_conns();
                    cost += self.host_fanout_cost(slaves.len());
                    wr_posts += u32::try_from(slaves.len()).unwrap_or(u32::MAX);
                    doorbells += self.fanout_doorbells(slaves.len());
                    for slave in slaves {
                        frames.push(OutFrame {
                            conn: slave,
                            tag: tag::REPL_STREAM,
                            payload: frame.clone(),
                        });
                    }
                }
                Mode::TcpRedis => {
                    for slave in self.synced_slave_conns() {
                        cost += net_p.tcp_send_cost(frame.len());
                        frames.push(OutFrame {
                            conn: slave,
                            tag: tag::REPL_STREAM,
                            payload: frame.clone(),
                        });
                    }
                }
            }
        }
        if !defer && reply_after_stream {
            // The deferred-from-above forwarded ack, now ordered behind
            // its stream frame (its post cost was charged with the reply
            // branch above; only the emission order moved).
            frames.push(OutFrame {
                conn,
                tag: reply_tag,
                payload: reply_frame,
            });
        }

        let jitter = self.cfg.costs.jitter;
        let spike_prob = self.cfg.costs.post_spike_prob;
        let spike_cost = self.cfg.costs.post_spike_cost;
        let mut cost = cost.mul_f64(self.rng().service_jitter(jitter));
        // The stall is doorbell/CQ contention on the MMIO write, so the
        // draw happens once per *doorbell*, not per linked WR: a batched
        // fan-out risks one stall where serial posting risks N. (With
        // batching off, doorbells == wr_posts and the draw sequence is
        // unchanged from the serial model.)
        for _ in 0..doorbells {
            if self.rng().chance(spike_prob) {
                cost += spike_cost;
            }
        }
        self.stat_wrs_posted += u64::from(wr_posts);
        self.stat_doorbells += u64::from(doorbells);
        let done = self.cpu.run_on(shard, ctx.now(), cost).finished;
        self.schedule_frames(ctx, done, frames);
    }

    /// Schedule a handler's staged frames for delivery at `done`. With one
    /// shard this is exactly the historical single timer. With several,
    /// replication-stream frames are serialized through a single egress
    /// point (`repl_egress_at`): shards may finish out of order, but the
    /// backlog is one stream, so stream frames must hit the wire in the
    /// offset order they were fed — the sim's FIFO tie-break at equal
    /// timestamps preserves feed order for frames released together.
    fn schedule_frames(&mut self, ctx: &mut Context<'_>, done: SimTime, frames: Vec<OutFrame>) {
        if self.engines.len() <= 1 {
            ctx.timer_at(done, ServerMsg::SendFrames(frames));
            return;
        }
        if self.cfg.hot_cache_enabled() && frames.iter().any(|f| f.tag == tag::REPL_STREAM) {
            // Cache-coherency ordering: a forwarded write's ack must not
            // outrun its own stream frame through the egress point (the
            // front-end invalidates off the stream *before* relaying
            // acks), so the whole batch — already stream-first — moves
            // through `repl_egress_at` together.
            let at = done.max(self.repl_egress_at);
            self.repl_egress_at = at;
            ctx.timer_at(at, ServerMsg::SendFrames(frames));
            return;
        }
        let (stream, other): (Vec<OutFrame>, Vec<OutFrame>) =
            frames.into_iter().partition(|f| f.tag == tag::REPL_STREAM);
        if !other.is_empty() {
            ctx.timer_at(done, ServerMsg::SendFrames(other));
        }
        if !stream.is_empty() {
            let at = done.max(self.repl_egress_at);
            self.repl_egress_at = at;
            ctx.timer_at(at, ServerMsg::SendFrames(stream));
        }
    }

    /// Host CPU to post a replication fan-out of `n` WRs: `n` serial
    /// doorbells, or one linked post list when `batch_wr_posts` is on.
    fn host_fanout_cost(&self, n: usize) -> SimDuration {
        if self.cfg.batch_wr_posts {
            self.cfg.net.post_list_cpu(n)
        } else {
            self.cfg.net.wr_post_cpu.mul_f64(n as f64)
        }
    }

    /// Doorbells a fan-out of `n` WRs rings under the current config.
    fn fanout_doorbells(&self, n: usize) -> u32 {
        if self.cfg.batch_wr_posts {
            u32::from(n > 0)
        } else {
            u32::try_from(n).unwrap_or(u32::MAX)
        }
    }

    /// Deferred modes, master side: the commit offset derivable from the
    /// master's own view of slave progress, independent of the NIC's
    /// `WriteCommitted` notifications. This is what keeps quorum/chain
    /// semantics working through degraded (host fan-out) periods and
    /// covers the window where a commit notification is lost with the
    /// NIC channel: under quorum, the k-th largest reported offset among
    /// slave conns (k = required slave acks) is replicated on a majority;
    /// under chain, the minimum over all open slave conns (every hop).
    fn census_commit_upto(&self) -> u64 {
        let mode = self.active_mode;
        let mut offs: Vec<u64> = self
            .conns
            .iter()
            .filter(|c| c.open)
            .filter_map(|c| match c.kind {
                ConnKind::Slave {
                    reported_offset, ..
                } => Some(reported_offset),
                _ => None,
            })
            .collect();
        match mode {
            ReplModeKind::Async => u64::MAX,
            ReplModeKind::Quorum => {
                let k = replmode::quorum_slave_acks(self.cfg.num_slaves);
                if k == 0 {
                    return u64::MAX;
                }
                if offs.len() < k {
                    return 0;
                }
                offs.sort_unstable_by(|a, b| b.cmp(a));
                offs[k - 1]
            }
            ReplModeKind::Chain => offs.iter().copied().min().unwrap_or(0),
        }
    }

    /// Release every deferred reply covered by the known commit point,
    /// charging the reply-post CPU that `finish_command` skipped.
    fn release_ready_replies(&mut self, ctx: &mut Context<'_>) {
        if self.pending_replies.is_empty() {
            return;
        }
        let upto = self.commit_upto.max(self.census_commit_upto());
        let mut frames: Vec<OutFrame> = Vec::new();
        let mut cost = SimDuration::ZERO;
        let mut doorbells = 0u32;
        while let Some(front) = self.pending_replies.front() {
            if front.end_offset > upto {
                break;
            }
            let Some(p) = self.pending_replies.pop_front() else {
                break;
            };
            if !self.conns[p.conn].open {
                continue; // client gave up waiting; nothing to deliver
            }
            self.stat_released_replies += 1;
            match self.cfg.mode {
                Mode::TcpRedis => cost += self.cfg.net.tcp_send_cost(p.payload.len()),
                Mode::RdmaRedis | Mode::Skv => {
                    cost += self.cfg.net.wr_post_cpu;
                    self.stat_wrs_posted += 1;
                    doorbells += 1;
                }
            }
            frames.push(OutFrame {
                conn: p.conn,
                tag: p.tag,
                payload: p.payload,
            });
        }
        if frames.is_empty() {
            return;
        }
        let jitter = self.cfg.costs.jitter;
        let spike_prob = self.cfg.costs.post_spike_prob;
        let spike_cost = self.cfg.costs.post_spike_cost;
        let mut cost = cost.mul_f64(self.rng().service_jitter(jitter));
        for _ in 0..doorbells {
            if self.rng().chance(spike_prob) {
                cost += spike_cost;
            }
        }
        self.stat_doorbells += u64::from(doorbells);
        let done = self.cpu.run_on(0, ctx.now(), cost).finished;
        self.schedule_frames(ctx, done, frames);
    }

    /// Deliver the frames a command handler staged. With batching off
    /// this is the historical per-frame `send_on` loop, schedule-identical
    /// to the seed. With `batch_wr_posts` on, replication-stream frames
    /// bound for ready RDMA connections are staged via
    /// [`Channel::build_wr`] and posted as one linked list — a single
    /// doorbell for the whole fan-out — while replies, TCP sends, and
    /// handshake-queued messages still go through `send_on`.
    fn emit_frames(&mut self, ctx: &mut Context<'_>, frames: Vec<OutFrame>) {
        if !self.cfg.batch_wr_posts {
            for f in frames {
                self.send_on(ctx, f.conn, f.tag, f.payload);
            }
            return;
        }
        let mut staged_conns = Vec::new();
        let mut wrs = Vec::new();
        // With the hot cache on, cookie replies ride the same linked post
        // list as the stream frames they must trail — the list preserves
        // per-QP order, where an early `send_on` would overtake the batch.
        let cache_on = self.cfg.hot_cache_enabled();
        for f in frames {
            let batchable = (f.tag == tag::REPL_STREAM || (cache_on && f.tag == tag::FWD_REPLY))
                && self.conns[f.conn].open
                && self.conns[f.conn].channel.qp().is_some();
            if batchable {
                // `None` means the frame was queued behind the MR
                // handshake and will flush when it completes — exactly
                // what `send` would have done.
                if let Some(wr) = self.conns[f.conn].channel.build_wr(f.tag, f.payload) {
                    staged_conns.push(f.conn);
                    wrs.push(wr);
                }
            } else {
                self.send_on(ctx, f.conn, f.tag, f.payload);
            }
        }
        if wrs.is_empty() {
            return;
        }
        let net = self.net.clone();
        let results = net.post_send_batch(ctx, wrs);
        for (conn, result) in staged_conns.into_iter().zip(results) {
            if result.is_err() {
                self.conns[conn].channel.mark_broken();
                self.on_conn_broken(ctx, conn);
            }
        }
    }

    // -- master-side synchronization ------------------------------------------

    /// A slave asked to synchronize (directly, or relayed by Nic-KV).
    fn on_sync_request(
        &mut self,
        ctx: &mut Context<'_>,
        slave: SocketAddr,
        position: ReplicationPosition,
    ) {
        // Fast path: partial resync needs no persist step.
        if position.matches(self.repl_id) && self.backlog.can_serve(position.offset) {
            self.begin_slave_transfer(ctx, slave, position, None, position.offset);
            return;
        }
        // Full sync: capture the snapshot now (fork-style copy-on-write
        // semantics) but charge the persist time on a background core, so
        // the event loop keeps serving clients (paper: "starts a child
        // process to persist all the data").
        let dbs: Vec<&Db> = self.engines.iter().map(Engine::db).collect();
        let snapshot = rdb::save_union(&dbs);
        let start_offset = self.backlog.offset();
        let keys = dbs.iter().map(|db| db.len() as u64).sum::<u64>();
        // The persist core sits just past the shard cores (core 1 when
        // unsharded — the historical schedule).
        let persist_core = self.engines.len().max(1);
        let cost = SimDuration::from_micros(150) + self.cfg.costs.persist_per_key * keys;
        let done = self.cpu.run_on(persist_core, ctx.now(), cost).finished;
        ctx.timer_at(
            done,
            ServerMsg::PersistDone {
                slave,
                position,
                snapshot,
                start_offset,
            },
        );
    }

    /// Persist finished (or partial path): connect to the slave and send.
    fn begin_slave_transfer(
        &mut self,
        ctx: &mut Context<'_>,
        slave: SocketAddr,
        position: ReplicationPosition,
        snapshot: Option<(Vec<u8>, u64)>,
        resume_from: u64,
    ) {
        let mut frames: Vec<(u32, Frame)> = Vec::new();
        match snapshot {
            Some((rdb_bytes, start_offset)) => {
                self.stat_full_syncs += 1;
                frames.push((
                    tag::NODE,
                    NodeMsg::FullSyncBegin {
                        repl_id: self.repl_id,
                        start_offset,
                        total_bytes: rdb_bytes.len() as u64,
                    }
                    .encode()
                    .into(),
                ));
                // Chunks are zero-copy views into the one snapshot buffer.
                let rdb_frame = Frame::from(rdb_bytes);
                let mut at = 0;
                while at < rdb_frame.len() {
                    let end = (at + RDB_CHUNK.max(1)).min(rdb_frame.len());
                    frames.push((tag::RDB_CHUNK, rdb_frame.slice(at..end)));
                    at = end;
                }
                if rdb_frame.is_empty() {
                    frames.push((tag::RDB_CHUNK, Frame::new()));
                }
                // Stream everything that happened since the snapshot.
                self.push_backlog_range(start_offset, &mut frames);
            }
            None => {
                self.stat_partial_syncs += 1;
                frames.push((
                    tag::NODE,
                    NodeMsg::PartialSyncBegin {
                        repl_id: self.repl_id,
                        from_offset: resume_from,
                        to_offset: self.backlog.offset(),
                    }
                    .encode()
                    .into(),
                ));
                self.push_backlog_range(resume_from, &mut frames);
            }
        }
        let _ = position;
        // Reuse an existing channel to this slave if one is open.
        if let Some(conn) =
            self.conn_of_kind(|k| matches!(k, ConnKind::Slave { addr, .. } if *addr == slave))
        {
            for (t, p) in frames {
                self.send_on(ctx, conn, t, p);
            }
        } else {
            self.dial(ctx, slave, ConnectIntent::SyncSlave { frames });
        }
    }

    fn push_backlog_range(&self, from: u64, frames: &mut Vec<(u32, Frame)>) {
        if let Some(bytes) = self.backlog.range_from(from) {
            let mut offset = from;
            for chunk in bytes.chunks(STREAM_CHUNK) {
                frames.push((tag::REPL_STREAM, stream_frame(offset, chunk).into()));
                offset += chunk.len() as u64;
            }
        }
    }

    // -- slave-side synchronization -------------------------------------------

    fn begin_slaveof(
        &mut self,
        ctx: &mut Context<'_>,
        master: SocketAddr,
        nic: Option<SocketAddr>,
    ) {
        self.prior_slave_of = Some((master, nic));
        self.last_write_ack = 0;
        let position = ReplicationPosition::unsynced();
        self.role = Role::Slave {
            master,
            nic,
            syncing: true,
            rdb_expect: 0,
            rdb_buf: Vec::new(),
            rdb_start_offset: 0,
            stash: Vec::new(),
            resyncing: false,
        };
        self.send_sync_request(ctx, position);
    }

    fn send_sync_request(&mut self, ctx: &mut Context<'_>, position: ReplicationPosition) {
        let Role::Slave { master, nic, .. } = &self.role else {
            return;
        };
        self.sync_request_at = Some(ctx.now());
        let upstream = nic.unwrap_or(*master);
        let msg = NodeMsg::SyncRequest {
            slave: self.addr,
            position,
        }
        .encode();
        if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Nic)) {
            self.send_on(ctx, conn, tag::NODE, msg);
        } else if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Master)) {
            // Nic-KV is unreachable but the master link survives: ask the
            // master directly so a gap-resync doesn't dial a dead SoC.
            self.send_on(ctx, conn, tag::NODE, msg);
        } else {
            // The connection to the upstream (Nic-KV or master) is reused
            // for probes and progress, so label it Nic.
            self.dial(
                ctx,
                upstream,
                ConnectIntent::SyncUpstream {
                    frames: vec![(tag::NODE, msg.into())],
                },
            );
        }
        // The request is now outstanding; cron re-issues it if no
        // Full/PartialSyncBegin answers within `waiting_time` (the request
        // or its reply can be lost anywhere along the relay).
        if let Role::Slave { resyncing, .. } = &mut self.role {
            *resyncing = true;
        }
    }

    fn on_full_sync_begin(
        &mut self,
        conn: usize,
        repl_id: ReplicationId,
        start_offset: u64,
        total_bytes: u64,
    ) {
        self.conns[conn].kind = ConnKind::Master;
        if let Role::Slave {
            syncing,
            resyncing,
            rdb_expect,
            rdb_buf,
            rdb_start_offset,
            ..
        } = &mut self.role
        {
            *syncing = true;
            *resyncing = false;
            *rdb_expect = total_bytes;
            *rdb_buf = Vec::with_capacity(usize::try_from(total_bytes).unwrap_or(0));
            *rdb_start_offset = start_offset;
            self.repl_id = repl_id;
        }
    }

    fn on_rdb_chunk(&mut self, ctx: &mut Context<'_>, chunk: &[u8]) {
        // Transfer progress resets the stalled-sync clock.
        self.sync_request_at = Some(ctx.now());
        let Role::Slave {
            rdb_expect,
            rdb_buf,
            rdb_start_offset,
            syncing,
            ..
        } = &mut self.role
        else {
            return;
        };
        rdb_buf.extend_from_slice(chunk);
        if (rdb_buf.len() as u64) < *rdb_expect {
            return;
        }
        // Snapshot complete: load it (charging CPU), then adopt the offset.
        let snapshot = std::mem::take(rdb_buf);
        let start_offset = *rdb_start_offset;
        *syncing = false;
        let seed = self.rng().gen_u64();
        let load_result = if self.engines.len() == 1 {
            rdb::load(self.engines[0].db_mut(), &snapshot, seed)
        } else {
            // Route each snapshot key to its owning shard — a sharded
            // slave's per-shard stores mirror the master's slot map.
            let mut dbs: Vec<Db> = self
                .engines
                .iter_mut()
                .map(|e| std::mem::replace(e.db_mut(), Db::new()))
                .collect();
            let router = self.router.clone();
            let r = rdb::load_routed(&mut dbs, &snapshot, seed, &|key| router.shard_of_key(key));
            for (e, db) in self.engines.iter_mut().zip(dbs) {
                *e.db_mut() = db;
            }
            r
        };
        let loaded = match load_result {
            Ok(n) => n,
            Err(_) => {
                // Corrupt snapshot (torn transfer): restart the sync from
                // scratch instead of taking the whole process down.
                self.stat_conn_errors += 1;
                if let Role::Slave { syncing, .. } = &mut self.role {
                    *syncing = true;
                }
                self.send_sync_request(ctx, ReplicationPosition::unsynced());
                return;
            }
        };
        self.stat_full_syncs += 1;
        let cost = SimDuration::from_micros(100) + self.cfg.costs.load_per_key * loaded as u64;
        self.cpu.run_on(0, ctx.now(), cost);
        // Adopt the master's history at the snapshot point. The backlog is
        // reset by feeding a placeholder of the right length conceptually;
        // we track the slave offset via a dedicated counter instead.
        self.slave_set_offset(start_offset);
        self.drain_stash(ctx);
        self.maybe_send_write_ack(ctx);
    }

    fn on_partial_sync_begin(&mut self, conn: usize, repl_id: ReplicationId) {
        self.conns[conn].kind = ConnKind::Master;
        self.repl_id = repl_id;
        if let Role::Slave {
            syncing, resyncing, ..
        } = &mut self.role
        {
            *syncing = false;
            *resyncing = false;
        }
        self.stat_partial_syncs += 1;
    }

    // The slave tracks its applied offset in `slave_offset`; stored in the
    // backlog-offset field of a master, but slaves don't use their backlog,
    // so keep a plain counter:
    fn slave_offset(&self) -> u64 {
        self.backlog.offset()
    }

    fn slave_set_offset(&mut self, offset: u64) {
        // Feed zero-bytes to advance the counter to `offset`. The backlog
        // content of a slave is never served, only the offset matters.
        let cur = self.backlog.offset();
        if offset > cur {
            let gap = usize::try_from(offset - cur).unwrap_or(usize::MAX);
            // Feed in bounded chunks to avoid one huge allocation.
            let mut left = gap;
            let chunk = vec![0u8; left.min(64 * 1024)];
            while left > 0 {
                let n = left.min(chunk.len());
                self.backlog.feed(&chunk[..n]);
                left -= n;
            }
        }
    }

    /// Apply a replication stream frame (slave side).
    fn on_repl_stream(&mut self, ctx: &mut Context<'_>, payload: Frame) {
        if parse_stream_frame(&payload).is_none() {
            return;
        }
        let from_offset = u64::from_le_bytes(payload[..8].try_into().unwrap_or_default());
        // The body is a zero-copy view of the delivery frame; stashing it
        // keeps the view rather than reallocating per stalled frame.
        let body = payload.slice(8..);
        let Role::Slave { syncing, stash, .. } = &mut self.role else {
            return;
        };
        if *syncing {
            if stash.len() < STASH_CAP {
                stash.push((from_offset, body));
            }
            return;
        }
        self.apply_stream(ctx, from_offset, body);
        self.drain_stash(ctx);
        self.maybe_send_write_ack(ctx);
    }

    /// Chain mode (SKV): eagerly ack the cumulative *applied* offset to
    /// Nic-KV after an apply batch. The NIC advances a chain hop only on
    /// this ack — a WR completion proves delivery to the ring, not
    /// application — so the tail ack certifies the whole chain has the
    /// write applied when the client reply releases.
    fn maybe_send_write_ack(&mut self, ctx: &mut Context<'_>) {
        if self.cfg.mode != Mode::Skv || self.active_mode != ReplModeKind::Chain {
            return;
        }
        if !self.is_synced_slave() {
            return;
        }
        let offset = self.slave_offset();
        if offset <= self.last_write_ack {
            return;
        }
        if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Nic)) {
            self.last_write_ack = offset;
            let msg = NodeMsg::WriteAck {
                slave: self.addr,
                offset,
            }
            .encode();
            self.send_on(ctx, conn, tag::NODE, msg);
        }
    }

    fn drain_stash(&mut self, ctx: &mut Context<'_>) {
        let my_offset = self.slave_offset();
        let Role::Slave { stash, .. } = &mut self.role else {
            return;
        };
        // While a gap is still open nothing stashed can apply; skip the
        // take-sort-restash churn (the stash can hold thousands of frames
        // while a resync is in flight).
        if stash.is_empty() || stash.iter().all(|&(off, _)| off > my_offset) {
            return;
        }
        let mut pending = std::mem::take(stash);
        pending.sort_by_key(|(off, _)| *off);
        for (off, bytes) in pending {
            self.apply_stream(ctx, off, bytes);
        }
    }

    fn apply_stream(&mut self, ctx: &mut Context<'_>, from_offset: u64, bytes: Frame) {
        let my_offset = self.slave_offset();
        if from_offset > my_offset {
            // Gap: we missed bytes (e.g. we were crashed). Stash the frame
            // and ask the master for the missing range (self-healing
            // partial resync).
            let Role::Slave {
                stash, resyncing, ..
            } = &mut self.role
            else {
                return;
            };
            // Bounded: the resync stream re-covers anything dropped here
            // (a fresh gap just triggers another round).
            if stash.len() < STASH_CAP {
                stash.push((from_offset, bytes));
            }
            if !*resyncing {
                *resyncing = true;
                let pos = ReplicationPosition {
                    repl_id: self.repl_id,
                    offset: my_offset,
                };
                self.send_sync_request(ctx, pos);
            }
            return;
        }
        let skip = usize::try_from(my_offset - from_offset).unwrap_or(usize::MAX);
        if skip >= bytes.len() {
            return; // entirely duplicate
        }
        let fresh = &bytes[skip..];
        // Parse and execute each RESP command in the fresh region. The
        // state change is applied synchronously (determinism: replica
        // contents never depend on core timing); the CPU model differs by
        // shard count. Unsharded: the historical single charge on core 0.
        // Sharded: a two-stage pipeline — core 0 parses, core 1 applies,
        // coupled by the bounded parse→apply ring, so parse of command
        // k+1 overlaps apply of command k.
        let pipelined = self.engines.len() > 1;
        let mut pos = 0;
        let now_ms = Self::now_ms(ctx);
        let mut applied = 0usize;
        let mut total_cost = SimDuration::ZERO;
        while pos < fresh.len() {
            match Resp::decode(&fresh[pos..]) {
                Decoded::Frame(v, used) => {
                    if let Ok(args) = v.into_command_args() {
                        let kib = used as f64 / 1024.0;
                        let parse_cost = self.cfg.costs.cmd_per_kib.mul_f64(kib);
                        let apply_cost = self.cfg.costs.apply_base;
                        if pipelined {
                            let gate = self.apply_ring.admit(ctx.now());
                            let parsed = self.cpu.run_on(0, gate, parse_cost).finished;
                            let done = self.cpu.run_on(1, parsed, apply_cost).finished;
                            self.apply_ring.complete(done);
                        } else {
                            total_cost += apply_cost + parse_cost;
                        }
                        let _ = self.execute_routed(now_ms, &args);
                    }
                    pos += used;
                    applied = pos;
                }
                _ => break, // partial command (not expected: frames align)
            }
        }
        self.stat_applied_bytes += applied as u64;
        self.backlog.feed(&fresh[..applied]);
        if !total_cost.is_zero() {
            self.cpu.run_on(0, ctx.now(), total_cost);
        }
    }

    // -- node messages ---------------------------------------------------------

    fn on_node_msg(&mut self, ctx: &mut Context<'_>, conn: usize, msg: NodeMsg) {
        match msg {
            NodeMsg::SyncRequest { slave, position } => {
                // Arrives directly in baseline modes (and when a recovered
                // slave re-dials the master in any mode).
                self.on_sync_request(ctx, slave, position);
            }
            NodeMsg::SyncNotify { slave, position } => {
                // Relayed by Nic-KV (Fig. 8 ②).
                self.conns[conn].kind = ConnKind::Nic;
                self.on_sync_request(ctx, slave, position);
            }
            NodeMsg::FullSyncBegin {
                repl_id,
                start_offset,
                total_bytes,
            } => {
                self.sync_request_at = Some(ctx.now());
                self.on_full_sync_begin(conn, repl_id, start_offset, total_bytes);
            }
            NodeMsg::PartialSyncBegin { repl_id, .. } => {
                self.on_partial_sync_begin(conn, repl_id);
            }
            NodeMsg::ProgressReport { slave, offset } => {
                let mut worst_lag = 0u64;
                let master_offset = self.backlog.offset();
                let mut stalled = false;
                for c in &mut self.conns {
                    if let ConnKind::Slave {
                        addr,
                        reported_offset,
                    } = &mut c.kind
                    {
                        if *addr == slave {
                            // Two consecutive reports at the same offset
                            // below ours: the stream tail was lost and no
                            // later frame will surface the gap slave-side
                            // (gap detection needs a next frame). Re-serve
                            // from the stalled offset.
                            stalled =
                                c.open && offset < master_offset && offset == *reported_offset;
                            *reported_offset = (*reported_offset).max(offset);
                        }
                        if *reported_offset > 0 {
                            worst_lag =
                                worst_lag.max(master_offset.saturating_sub(*reported_offset));
                        }
                    }
                }
                // In SKV mode the lag verdict comes from Nic-KV, which
                // knows which slaves are still valid; the master's own
                // census would keep counting a crashed slave forever.
                if self.cfg.mode != Mode::Skv {
                    self.lag_exceeded = worst_lag > self.cfg.max_slave_lag;
                }
                if stalled {
                    let position = ReplicationPosition {
                        repl_id: self.repl_id,
                        offset,
                    };
                    self.on_sync_request(ctx, slave, position);
                }
                // Progress may have advanced the census commit point.
                if self.is_master()
                    && replmode::replication_mode(self.active_mode).defers_replies()
                {
                    self.release_ready_replies(ctx);
                }
            }
            NodeMsg::Probe { seq } => {
                // Reply immediately (paper: "they reply to Nic-KV
                // immediately"); tiny cost on the event loop.
                self.cpu.run_on(0, ctx.now(), SimDuration::from_nanos(300));
                let reply = NodeMsg::ProbeReply {
                    seq,
                    from: self.addr,
                }
                .encode();
                self.send_on(ctx, conn, tag::NODE, reply);
            }
            NodeMsg::SlaveSetUpdate { available, lagging } => {
                self.available_slaves = available as usize;
                if self.cfg.mode == Mode::Skv {
                    self.lag_exceeded = lagging;
                }
            }
            NodeMsg::Promote => {
                self.role = Role::Master;
            }
            NodeMsg::Demote => {
                // Rejoin as a slave of the original master and resync from
                // the current offset. (A real system would also reconcile
                // any writes accepted while promoted; the paper's scenario
                // has the original master simply resume.)
                if let Some((master, nic)) = self.prior_slave_of {
                    self.last_write_ack = 0;
                    self.role = Role::Slave {
                        master,
                        nic,
                        syncing: false,
                        rdb_expect: 0,
                        rdb_buf: Vec::new(),
                        rdb_start_offset: 0,
                        stash: Vec::new(),
                        resyncing: false,
                    };
                    let pos = ReplicationPosition {
                        repl_id: self.repl_id,
                        offset: self.slave_offset(),
                    };
                    self.send_sync_request(ctx, pos);
                }
            }
            NodeMsg::WriteCommitted { upto } => {
                // Nic-KV reports the replication mode's commit point; the
                // master releases every deferred reply it covers.
                if self.is_master() {
                    self.commit_upto = self.commit_upto.max(upto);
                    self.release_ready_replies(ctx);
                }
            }
            NodeMsg::ModeChange { mode } => {
                // Nic-KV's cross-mode failover policy moved the cluster's
                // replication mode. Gated on the knob so a stray frame
                // cannot flip a fixed-mode cluster.
                if self.cfg.mode_failover && self.is_master() && mode != self.active_mode {
                    self.active_mode = mode;
                    self.stat_mode_changes += 1;
                    if !replmode::replication_mode(mode).defers_replies() {
                        // Degraded to async: every held reply releases
                        // under the weaker (immediate-ack) contract.
                        self.commit_upto = self.commit_upto.max(self.backlog.offset());
                        self.release_ready_replies(ctx);
                    }
                }
            }
            NodeMsg::ProbeReply { .. }
            | NodeMsg::Replicate { .. }
            | NodeMsg::Hello { .. }
            | NodeMsg::WriteAck { .. } => {}
        }
    }

    // -- cron -------------------------------------------------------------------

    fn on_cron(&mut self, ctx: &mut Context<'_>) {
        ctx.timer(SimDuration::from_millis(100), ServerMsg::Cron);
        if self.crashed {
            return;
        }
        let now_ms = Self::now_ms(ctx);
        for engine in &mut self.engines {
            engine.cron(now_ms);
        }
        // Slaves report progress on the master channel (Fig. 9 ③).
        if let Role::Slave { syncing: false, .. } = &self.role {
            let offset = self.slave_offset();
            if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Master)) {
                let msg = NodeMsg::ProgressReport {
                    slave: self.addr,
                    offset,
                }
                .encode();
                self.send_on(ctx, conn, tag::NODE, msg);
            }
            // Deferred modes: Nic-KV also consumes progress as cumulative
            // acks (covers acks lost to QP errors between retransmits).
            if self.cfg.mode == Mode::Skv
                && replmode::replication_mode(self.active_mode).defers_replies()
            {
                if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Nic)) {
                    let msg = NodeMsg::ProgressReport {
                        slave: self.addr,
                        offset,
                    }
                    .encode();
                    self.send_on(ctx, conn, tag::NODE, msg);
                }
            }
        }
        // Deferred modes, master side: drop replies whose client conn died
        // (undeliverable) and re-check the census commit point so a
        // lost `WriteCommitted` cannot wedge the reply queue.
        if self.is_master() && replmode::replication_mode(self.active_mode).defers_replies() {
            let conns = &self.conns;
            self.pending_replies.retain(|p| conns[p.conn].open);
            self.release_ready_replies(ctx);
        }
        // A sync can stall: the request lost in flight (e.g. relayed via a
        // Nic-KV that had no master link at that instant), or the RDB/stream
        // transfer cut by a transport error. `sync_request_at` doubles as a
        // progress clock (bumped per RDB chunk); silence means re-request.
        if let Role::Slave {
            resyncing, syncing, ..
        } = &self.role
        {
            if (*resyncing || *syncing)
                && self
                    .sync_request_at
                    .is_none_or(|at| ctx.now() - at > self.cfg.waiting_time)
            {
                self.schedule_upstream_resync(ctx);
            }
        }
        if self.cfg.mode == Mode::Skv {
            self.cron_skv_liveness(ctx);
        }
    }

    /// SKV-mode liveness checks: detect a silent Nic-KV (master falls back
    /// to host-driven fan-out, a slave tears the channel down) and poll the
    /// SoC so everyone re-attaches after it recovers.
    fn cron_skv_liveness(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if self.is_master() {
            if !self.degraded {
                if let Some(seen) = self.nic_last_seen {
                    if now - seen > self.cfg.upstream_silence {
                        self.enter_degraded(now);
                    }
                }
            }
            if self.degraded && now >= self.next_upstream_retry {
                self.next_upstream_retry = now + SimDuration::from_millis(500);
                self.redial_nic(ctx);
            }
            return;
        }
        let Role::Slave {
            nic: Some(nic),
            syncing: false,
            ..
        } = &self.role
        else {
            return;
        };
        let nic = *nic;
        // Probe silence on a live-looking channel means the SoC is gone.
        if let Some(seen) = self.upstream_last_seen {
            if now - seen > self.cfg.upstream_silence {
                if let Some(conn) = self.open_conn_to(nic) {
                    self.on_conn_broken(ctx, conn);
                } else {
                    self.upstream_last_seen = Some(now);
                }
            }
        }
        // No channel to Nic-KV (it crashed, or the dial gave up): poll it
        // so a recovered SoC re-learns this slave — without this the NIC
        // comes back with an empty node list and fan-out goes nowhere.
        if self.open_conn_to(nic).is_none()
            && !self.intents.contains_key(&nic)
            && self.conn_of_kind(|k| matches!(k, ConnKind::Nic)).is_none()
            && now >= self.next_upstream_retry
        {
            self.next_upstream_retry = now + SimDuration::from_secs(1);
            let msg = NodeMsg::SyncRequest {
                slave: self.addr,
                position: ReplicationPosition {
                    repl_id: self.repl_id,
                    offset: self.slave_offset(),
                },
            }
            .encode();
            self.dial(
                ctx,
                nic,
                ConnectIntent::SyncUpstream {
                    frames: vec![(tag::NODE, msg.into())],
                },
            );
        }
    }

    // -- channel message routing --------------------------------------------------

    fn on_channel_msg(&mut self, ctx: &mut Context<'_>, conn: usize, msg: ChannelMsg) {
        // Liveness bookkeeping: traffic on a Nic-KV channel proves the SoC
        // alive (probes arrive every `probe_interval`, so silence is a
        // reliable death signal).
        match self.conns[conn].kind {
            ConnKind::Nic if self.is_master() => {
                self.nic_last_seen = Some(ctx.now());
                // The SoC came back: re-offload replication fan-out.
                self.exit_degraded(ctx.now());
            }
            ConnKind::Nic => {
                self.upstream_last_seen = Some(ctx.now());
            }
            _ => {}
        }
        match msg.tag {
            tag::CMD => self.on_client_command(ctx, conn, msg.payload),
            // A client command relayed by the SoC front-end: strip the
            // cookie and run the ordinary command path; the reply goes
            // back cookie-framed as FWD_REPLY on the same channel.
            tag::FWD_CMD => self.on_forwarded_command(ctx, conn, &msg.payload),
            tag::NODE => {
                if let Some(m) = NodeMsg::decode(&msg.payload) {
                    self.on_node_msg(ctx, conn, m);
                }
            }
            tag::REPL_STREAM => self.on_repl_stream(ctx, msg.payload),
            tag::RDB_CHUNK => self.on_rdb_chunk(ctx, &msg.payload),
            _ => {}
        }
    }
}

/// Encode a replication stream frame: `[u64 from_offset][stream bytes]`.
pub fn stream_frame(from_offset: u64, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 8);
    out.extend_from_slice(&from_offset.to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decode a replication stream frame.
pub fn parse_stream_frame(frame: &[u8]) -> Option<(u64, &[u8])> {
    let header = frame.get(..8)?;
    let offset = u64::from_le_bytes(header.try_into().ok()?);
    Some((offset, &frame[8..]))
}

impl Actor for KvServer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.rng = ctx.rng().split();
        self.started = true;
        let me = ctx.id();
        if self.cfg.mode.uses_rdma() {
            // CQ 0 first, then listen, then arm — the seed's exact order.
            // Extra per-shard CQs (sharded servers only) follow, each armed
            // so its completions interrupt the owning shard's core.
            let cq = self.net.create_cq(me);
            self.cqs.push(cq);
            self.net.rdma_listen(self.addr, me);
            self.net.req_notify_cq(ctx, cq);
            for _ in 1..self.engines.len() {
                let extra = self.net.create_cq(me);
                self.cqs.push(extra);
                self.net.req_notify_cq(ctx, extra);
            }
        } else {
            self.net.tcp_listen(self.addr, me);
        }
        ctx.timer(SimDuration::from_millis(100), ServerMsg::Cron);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        // Control events work even while crashed (Recover must).
        let msg = match msg.downcast::<Control>() {
            Ok(ctrl) => {
                match *ctrl {
                    Control::Slaveof { master, nic } => {
                        if !self.crashed {
                            self.begin_slaveof(ctx, master, nic);
                        }
                    }
                    Control::Crash => {
                        self.crashed = true;
                        self.net.set_node_up(self.node, false);
                    }
                    Control::ConnectNic { nic } => {
                        self.nic_addr = Some(nic);
                        self.nic_last_seen = Some(ctx.now());
                        let hello = NodeMsg::Hello {
                            from: self.addr,
                            is_master: true,
                        }
                        .encode();
                        self.dial(
                            ctx,
                            nic,
                            ConnectIntent::SyncUpstream {
                                frames: vec![(tag::NODE, hello.into())],
                            },
                        );
                    }
                    Control::Recover => {
                        self.crashed = false;
                        self.net.set_node_up(self.node, true);
                        // Fresh start for the liveness clocks and backoff.
                        self.nic_last_seen = Some(ctx.now());
                        self.upstream_last_seen = Some(ctx.now());
                        self.reconnect_attempts.clear();
                        self.next_upstream_retry = ctx.now();
                        // Notifications delivered while crashed were lost;
                        // drain stale completions (replenishing receive
                        // slots) and re-arm the completion channel.
                        let cqs = self.cqs.clone();
                        for cq in cqs {
                            let net = self.net.clone();
                            cqdrain::recover_drain(&net, ctx, cq, |ctx, wc| {
                                if let Some(&conn) = self.by_qp.get(&wc.qp) {
                                    // Drop whatever the message was: the
                                    // process "restarted".
                                    let _ = self.conns[conn].channel.on_wc(&net, ctx, &wc);
                                }
                            });
                        }
                        // A synced slave re-requests sync from its current
                        // offset; the backlog usually serves it partially.
                        if let Role::Slave { syncing: false, .. } = &self.role {
                            let pos = ReplicationPosition {
                                repl_id: self.repl_id,
                                offset: self.slave_offset(),
                            };
                            self.send_sync_request(ctx, pos);
                        } else if self.cfg.mode == Mode::Skv && self.is_master() {
                            // A recovered master re-registers with Nic-KV:
                            // the SoC tore its channel down while the host
                            // was gone, so the surviving half is stale.
                            if let Some(nic) = self.nic_addr {
                                if let Some(conn) = self.open_conn_to(nic) {
                                    self.close_conn(conn);
                                }
                                self.redial_nic(ctx);
                            }
                        }
                    }
                }
                return;
            }
            Err(other) => other,
        };
        if self.crashed {
            // Keep the cron chain alive through a crash so the periodic
            // recovery machinery resumes on Recover; all other messages
            // are lost with the process.
            if let Ok(m) = msg.downcast::<ServerMsg>() {
                if matches!(*m, ServerMsg::Cron) {
                    ctx.timer(SimDuration::from_millis(100), ServerMsg::Cron);
                }
            }
            return;
        }
        let msg = match msg.downcast::<ServerMsg>() {
            Ok(m) => {
                match *m {
                    ServerMsg::Cron => self.on_cron(ctx),
                    ServerMsg::SendFrames(frames) => self.emit_frames(ctx, frames),
                    ServerMsg::PersistDone {
                        slave,
                        position,
                        snapshot,
                        start_offset,
                    } => {
                        self.begin_slave_transfer(
                            ctx,
                            slave,
                            position,
                            Some((snapshot, start_offset)),
                            0,
                        );
                    }
                    ServerMsg::Redial { to } => {
                        if self.intents.contains_key(&to) {
                            self.stat_reconnects += 1;
                            self.connect_to(ctx, to);
                        }
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmConnectRequest { req, .. } => {
                // Accept now; the channel (ring registration, receive
                // posting, MR handshake) is created when CmEstablished
                // arrives, so both sides post receives before either
                // side's handshake SEND can land. A request without a CQ
                // (TCP mode race) or one already answered is ignored.
                // Sharded servers spread accepted connections across the
                // per-shard CQs round-robin, so each shard core polls its
                // own completion stream; with one CQ this picks cq 0 every
                // time.
                if self.cqs.is_empty() {
                    return;
                }
                let cq = self.cqs[self.accept_cursor % self.cqs.len()];
                self.accept_cursor += 1;
                let _ = self.net.rdma_accept(ctx, req, cq);
            }
            NetEvent::CmEstablished { qp, peer } => {
                if self.by_qp.contains_key(&qp) {
                    return;
                }
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                let (kind, frames) = self.intent_to_kind(peer);
                self.reconnect_attempts.remove(&peer);
                let conn = self.add_conn(ch, kind, Some(peer));
                for (t, p) in frames {
                    self.send_on(ctx, conn, t, p);
                }
            }
            NetEvent::CqNotify { cq } => {
                // Budgeted drain: at most `cq_poll_budget` completions per
                // event, with the poll + per-WC handling CPU charged to
                // the event-loop core; an over-budget burst continues in
                // a self-scheduled follow-up once that work is done.
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    let Some(&conn) = self.by_qp.get(&wc.qp) else {
                        return;
                    };
                    if let Some(msg) = self.conns[conn].channel.on_wc(&net, ctx, &wc) {
                        self.on_channel_msg(ctx, conn, msg);
                    } else if self.conns[conn].open && self.conns[conn].channel.broken() {
                        self.on_conn_broken(ctx, conn);
                    }
                });
                // Poll CPU lands on the core owning this CQ (cq 0 → core
                // 0, the seed schedule; extra shard CQs → their cores).
                let core = self.cqs.iter().position(|&c| c == cq).unwrap_or(0);
                let done = self.cpu.run_on(core, ctx.now(), out.cpu_cost).finished;
                if out.more {
                    ctx.timer_at(done, NetEvent::CqNotify { cq });
                }
            }
            NetEvent::TcpAccepted { conn, .. } => {
                self.add_conn(Channel::tcp(conn), ConnKind::Unknown, None);
            }
            NetEvent::TcpConnected { conn, peer } => {
                let (kind, frames) = self.intent_to_kind(peer);
                self.reconnect_attempts.remove(&peer);
                let idx = self.add_conn(Channel::tcp(conn), kind, Some(peer));
                for (t, p) in frames {
                    self.send_on(ctx, idx, t, p);
                }
            }
            NetEvent::TcpDelivered { conn, bytes } => {
                let Some(&idx) = self.by_tcp.get(&conn) else {
                    return;
                };
                let msgs = self.conns[idx].channel.on_tcp_bytes(bytes);
                for m in msgs {
                    self.on_channel_msg(ctx, idx, m);
                }
            }
            NetEvent::TcpClosed { conn } => {
                if let Some(&idx) = self.by_tcp.get(&conn) {
                    self.on_conn_broken(ctx, idx);
                }
            }
            NetEvent::TcpConnectFailed { to } | NetEvent::CmConnectFailed { to } => {
                self.on_connect_failed(ctx, to);
            }
        }
    }

    fn name(&self) -> &str {
        "kv-server"
    }
}

impl KvServer {
    fn intent_to_kind(&mut self, peer: SocketAddr) -> (ConnKind, Vec<(u32, Frame)>) {
        match self.intents.remove(&peer) {
            Some(ConnectIntent::SyncSlave { frames }) => (
                ConnKind::Slave {
                    addr: peer,
                    reported_offset: 0,
                },
                frames,
            ),
            Some(ConnectIntent::SyncUpstream { frames }) => (ConnKind::Nic, frames),
            None => (ConnKind::Unknown, Vec::new()),
        }
    }
}
