//! Host-KV: the server process running on a host (master or slave).
//!
//! One actor type plays every server role in every mode:
//!
//! * **master** — executes client commands on a single-threaded event loop
//!   (core 0), feeds the replication backlog, and propagates write commands:
//!   * `TcpRedis` / `RdmaRedis`: sends the stream to each synced slave
//!     itself, one message (= one Work Request, = one chunk of host CPU)
//!     per slave per command — the serial fan-out §V-C blames for the
//!     degradation of Figure 7;
//!   * `Skv`: sends **one** replication request to Nic-KV (Figure 9 ①) and
//!     immediately returns to serving clients;
//! * **slave** — runs the initial synchronization of Figure 8 (request via
//!   Nic-KV, RDB or backlog transfer from the master), then applies the
//!   replication stream and reports progress.
//!
//! Replication stream frames carry the master-history offset of their first
//! byte, so receivers deduplicate overlaps (sync rides concurrently with
//! steady-state fan-out) and detect gaps (a crashed-and-recovered slave
//! re-requests synchronization from its last applied offset).

use std::collections::HashMap;

use skv_netsim::{CqId, Net, NetEvent, NodeId, QpId, SocketAddr, TcpConnId};
use skv_simcore::{Actor, ActorId, Context, CorePool, DetRng, Payload, SimDuration, SimTime};
use skv_store::backlog::Backlog;
use skv_store::engine::Engine;
use skv_store::rdb;
use skv_store::repl::{ReplicationId, ReplicationPosition};
use skv_store::resp::{Decoded, Resp};

use crate::channel::{Channel, ChannelMsg};
use crate::config::{ClusterConfig, Mode};
use crate::protocol::{tag, NodeMsg};

/// Maximum bytes per RDB transfer chunk.
const RDB_CHUNK: usize = 64 * 1024;
/// Maximum bytes per backlog-range replication frame (after the header).
const STREAM_CHUNK: usize = 32 * 1024;

/// External control events injected by the harness.
#[derive(Debug, Clone)]
pub enum Control {
    /// Make this server a slave of `master`; in SKV mode `nic` is the
    /// master's Nic-KV address to send the sync request to (Fig. 8 ①).
    Slaveof {
        /// The master's Host-KV address.
        master: SocketAddr,
        /// The master's Nic-KV address, if offloading is in use.
        nic: Option<SocketAddr>,
    },
    /// Crash this server (stops responding; its node drops traffic).
    Crash,
    /// Recover from a crash; a synced slave re-requests synchronization.
    Recover,
    /// Master only: open the channel to its Nic-KV (SKV mode).
    ConnectNic {
        /// The Nic-KV address on the SmartNIC SoC.
        nic: SocketAddr,
    },
}

/// Messages the server schedules to itself.
enum ServerMsg {
    /// Cron tick: expire cycle, rehash, progress report.
    Cron,
    /// CPU work finished; emit the prepared frames.
    SendFrames(Vec<OutFrame>),
    /// The RDB persist (on the background core) completed.
    PersistDone {
        slave: SocketAddr,
        position: ReplicationPosition,
        snapshot: Vec<u8>,
        start_offset: u64,
    },
}

struct OutFrame {
    conn: usize,
    tag: u32,
    payload: Vec<u8>,
}

/// What a connection is for (learned from traffic or connect intent).
enum ConnKind {
    Unknown,
    Client,
    /// The master's channel to its Nic-KV.
    Nic,
    /// A master's channel to one synced slave.
    Slave {
        addr: SocketAddr,
        reported_offset: u64,
    },
    /// A slave's channel from/to its master.
    Master,
}

struct ConnState {
    channel: Channel,
    kind: ConnKind,
    open: bool,
}

/// Why we are dialling out, keyed by remote address.
enum ConnectIntent {
    /// Master → slave, to run the initial sync; frames to send when ready.
    SyncSlave { frames: Vec<(u32, Vec<u8>)> },
    /// To the coordination upstream — the master dialling its Nic-KV, or a
    /// slave dialling Nic-KV (SKV) / the master (baselines); frames to send
    /// once the channel is ready.
    SyncUpstream { frames: Vec<(u32, Vec<u8>)> },
}

/// Replication role.
enum Role {
    Master,
    Slave {
        master: SocketAddr,
        nic: Option<SocketAddr>,
        syncing: bool,
        /// RDB accumulation during a full sync.
        rdb_expect: u64,
        rdb_buf: Vec<u8>,
        rdb_start_offset: u64,
        /// Stream frames that arrived while syncing or beyond a gap.
        stash: Vec<(u64, Vec<u8>)>,
        /// Guard so a detected gap triggers at most one resync at a time.
        resyncing: bool,
    },
}

/// The Host-KV server actor.
pub struct KvServer {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    addr: SocketAddr,
    cq: Option<CqId>,
    cpu: CorePool,
    engine: Engine,
    backlog: Backlog,
    repl_id: ReplicationId,
    role: Role,
    conns: Vec<ConnState>,
    by_qp: HashMap<QpId, usize>,
    by_tcp: HashMap<TcpConnId, usize>,
    intents: HashMap<SocketAddr, ConnectIntent>,
    /// Slaves considered available (from Nic-KV updates, or own census in
    /// baseline modes). Drives `min-slaves` rejection.
    available_slaves: usize,
    /// Whether any synced slave lags more than `max_slave_lag` bytes.
    lag_exceeded: bool,
    crashed: bool,
    /// Remembered SLAVEOF target so a promoted slave can rejoin on Demote.
    prior_slave_of: Option<(SocketAddr, Option<SocketAddr>)>,
    rng: Option<DetRng>,
    started: bool,
    /// Statistics: commands executed, replication frames sent, etc.
    pub stat_commands: u64,
    /// Write commands rejected due to `min-slaves` or lag.
    pub stat_rejected: u64,
    /// Stream bytes applied (slave side).
    pub stat_applied_bytes: u64,
    /// Full syncs served (master) or performed (slave).
    pub stat_full_syncs: u64,
    /// Partial syncs served (master) or performed (slave).
    pub stat_partial_syncs: u64,
}

impl KvServer {
    /// Create a server bound to `addr` on `node`.
    pub fn new(net: Net, cfg: ClusterConfig, node: NodeId, addr: SocketAddr, seed: u64) -> Self {
        let cores = cfg.machines.host_cores.max(2);
        KvServer {
            net,
            node,
            addr,
            cq: None,
            cpu: CorePool::new(cores, cfg.machines.host_core_speed),
            engine: Engine::new(seed),
            backlog: Backlog::new(cfg.backlog_size),
            repl_id: ReplicationId::from_seed(seed ^ 0xCAFE),
            role: Role::Master,
            conns: Vec::new(),
            by_qp: HashMap::new(),
            by_tcp: HashMap::new(),
            intents: HashMap::new(),
            available_slaves: 0,
            lag_exceeded: false,
            crashed: false,
            prior_slave_of: None,
            rng: None,
            started: false,
            cfg,
            stat_commands: 0,
            stat_rejected: 0,
            stat_applied_bytes: 0,
            stat_full_syncs: 0,
            stat_partial_syncs: 0,
        }
    }

    /// This server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine (for test inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access, for preloading data in tests and examples
    /// *before* replication starts. Mutations made this way bypass the
    /// backlog, so they only reach slaves through a subsequent full sync.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Master replication offset.
    pub fn repl_offset(&self) -> u64 {
        self.backlog.offset()
    }

    /// This server's replication position (slave view).
    pub fn position(&self) -> ReplicationPosition {
        ReplicationPosition {
            repl_id: self.repl_id,
            offset: self.backlog.offset(),
        }
    }

    /// Is this server currently acting as a master?
    pub fn is_master(&self) -> bool {
        matches!(self.role, Role::Master)
    }

    /// Is a slave fully synchronized?
    pub fn is_synced_slave(&self) -> bool {
        matches!(
            self.role,
            Role::Slave {
                syncing: false,
                ..
            }
        )
    }

    /// Mean utilization of the event-loop core over the run so far.
    pub fn core0_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(0, now)
    }

    fn now_ms(ctx: &Context<'_>) -> u64 {
        ctx.now().as_nanos() / 1_000_000
    }

    fn rng(&mut self) -> &mut DetRng {
        self.rng.as_mut().expect("started")
    }

    // -- connection plumbing -------------------------------------------------

    fn add_conn(&mut self, channel: Channel, kind: ConnKind) -> usize {
        let idx = self.conns.len();
        if let Some(qp) = channel.qp() {
            self.by_qp.insert(qp, idx);
        }
        if let Some(tc) = channel.tcp_conn() {
            self.by_tcp.insert(tc, idx);
        }
        self.conns.push(ConnState {
            channel,
            kind,
            open: true,
        });
        idx
    }

    fn send_on(&mut self, ctx: &mut Context<'_>, conn: usize, tag: u32, payload: &[u8]) {
        if !self.conns[conn].open {
            return;
        }
        let net = self.net.clone();
        self.conns[conn].channel.send(&net, ctx, tag, payload);
    }

    fn dial(&mut self, ctx: &mut Context<'_>, to: SocketAddr, intent: ConnectIntent) {
        self.intents.insert(to, intent);
        let me = ctx.id();
        if self.cfg.mode.uses_rdma() {
            let cq = self.cq.expect("cq created at start");
            self.net.rdma_connect(ctx, self.node, me, cq, to);
        } else {
            self.net.tcp_connect(ctx, self.node, me, to);
        }
    }

    fn conn_of_kind(&self, pred: impl Fn(&ConnKind) -> bool) -> Option<usize> {
        self.conns
            .iter()
            .position(|c| c.open && pred(&c.kind))
    }

    fn synced_slave_conns(&self) -> Vec<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.open && matches!(c.kind, ConnKind::Slave { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    // -- command path --------------------------------------------------------

    /// Handle one client command frame (TAG_CMD).
    fn on_client_command(&mut self, ctx: &mut Context<'_>, conn: usize, payload: Vec<u8>) {
        if matches!(self.conns[conn].kind, ConnKind::Unknown) {
            self.conns[conn].kind = ConnKind::Client;
        }
        let args = match Resp::decode(&payload) {
            Decoded::Frame(v, _) => match v.into_command_args() {
                Ok(args) => args,
                Err(e) => {
                    let reply = Resp::err(e).encode();
                    self.finish_command(ctx, conn, payload.len(), reply, None);
                    return;
                }
            },
            _ => {
                let reply = Resp::err("protocol error").encode();
                self.finish_command(ctx, conn, payload.len(), reply, None);
                return;
            }
        };

        // min-slaves / lag write gating (paper §III-C, §III-D).
        let spec = skv_store::cmd::lookup(&args[0]);
        let is_write_cmd = spec.is_some_and(|s| s.is_write());
        if is_write_cmd && self.write_gate_blocked() {
            self.stat_rejected += 1;
            let reply = Resp::Error(
                "NOREPLICAS Not enough good replicas to write".into(),
            )
            .encode();
            self.finish_command(ctx, conn, payload.len(), reply, None);
            return;
        }

        let result = self.engine.execute(Self::now_ms(ctx), &args);
        self.stat_commands += 1;
        let replicate = if result.should_replicate() {
            Some(payload.clone())
        } else {
            None
        };
        let reply = result.reply.encode();
        self.finish_command(ctx, conn, payload.len(), reply, replicate);
    }

    fn write_gate_blocked(&self) -> bool {
        if !self.is_master() {
            return false; // slaves reject writes elsewhere (read-only is
                          // not enforced: the paper's slaves serve reads)
        }
        let available = if self.cfg.mode == Mode::Skv {
            self.available_slaves
        } else {
            self.synced_slave_conns().len()
        };
        if self.cfg.min_slaves > 0 && available < self.cfg.min_slaves {
            return true;
        }
        self.lag_exceeded
    }

    /// Account CPU for a command and schedule its reply + replication.
    fn finish_command(
        &mut self,
        ctx: &mut Context<'_>,
        conn: usize,
        req_bytes: usize,
        reply: Vec<u8>,
        replicate: Option<Vec<u8>>,
    ) {
        let costs = &self.cfg.costs;
        let net_p = &self.cfg.net;
        let payload_kib = req_bytes as f64 / 1024.0;

        let mut cost = costs.cmd_base + costs.cmd_per_kib.mul_f64(payload_kib);
        let mut wr_posts = 0u32; // each post may stall (tail-latency model)
        let mut frames: Vec<OutFrame> = Vec::with_capacity(2);

        // Transport costs for receiving the request and posting the reply.
        match self.cfg.mode {
            Mode::TcpRedis => {
                cost += net_p.tcp_recv_cost(req_bytes);
                cost += net_p.tcp_send_cost(reply.len());
            }
            Mode::RdmaRedis | Mode::Skv => {
                cost += net_p.cq_poll_cpu;
                cost += net_p.wr_post_cpu;
                wr_posts += 1;
            }
        }
        frames.push(OutFrame {
            conn,
            tag: tag::REPLY,
            payload: reply,
        });

        // Replication propagation (the heart of the experiment).
        if let Some(cmd_bytes) = replicate {
            let from_offset = self.backlog.offset();
            self.backlog.feed(&cmd_bytes);
            let frame = stream_frame(from_offset, &cmd_bytes);
            match self.cfg.mode {
                Mode::Skv => {
                    // One request to Nic-KV, regardless of slave count
                    // (Figure 9 ①): a single WR post on the host.
                    if let Some(nic) = self.conn_of_kind(|k| matches!(k, ConnKind::Nic)) {
                        cost += net_p.wr_post_cpu;
                        wr_posts += 1;
                        frames.push(OutFrame {
                            conn: nic,
                            tag: tag::REPL_STREAM,
                            payload: frame,
                        });
                    }
                }
                Mode::RdmaRedis => {
                    // One WR post per slave, serially on the event loop —
                    // the CPU the paper measures RDMA-Redis burning.
                    for slave in self.synced_slave_conns() {
                        cost += net_p.wr_post_cpu;
                        wr_posts += 1;
                        frames.push(OutFrame {
                            conn: slave,
                            tag: tag::REPL_STREAM,
                            payload: frame.clone(),
                        });
                    }
                }
                Mode::TcpRedis => {
                    for slave in self.synced_slave_conns() {
                        cost += net_p.tcp_send_cost(frame.len());
                        frames.push(OutFrame {
                            conn: slave,
                            tag: tag::REPL_STREAM,
                            payload: frame.clone(),
                        });
                    }
                }
            }
        }

        let jitter = self.cfg.costs.jitter;
        let spike_prob = self.cfg.costs.post_spike_prob;
        let spike_cost = self.cfg.costs.post_spike_cost;
        let mut cost = cost.mul_f64(self.rng().service_jitter(jitter));
        for _ in 0..wr_posts {
            if self.rng().chance(spike_prob) {
                cost += spike_cost;
            }
        }
        let done = self.cpu.run_on(0, ctx.now(), cost).finished;
        ctx.timer_at(done, ServerMsg::SendFrames(frames));
    }

    // -- master-side synchronization ------------------------------------------

    /// A slave asked to synchronize (directly, or relayed by Nic-KV).
    fn on_sync_request(
        &mut self,
        ctx: &mut Context<'_>,
        slave: SocketAddr,
        position: ReplicationPosition,
    ) {
        // Fast path: partial resync needs no persist step.
        if position.matches(self.repl_id) && self.backlog.can_serve(position.offset) {
            self.begin_slave_transfer(ctx, slave, position, None, position.offset);
            return;
        }
        // Full sync: capture the snapshot now (fork-style copy-on-write
        // semantics) but charge the persist time on a background core, so
        // the event loop keeps serving clients (paper: "starts a child
        // process to persist all the data").
        let snapshot = rdb::save(self.engine.db());
        let start_offset = self.backlog.offset();
        let keys = self.engine.db().len() as u64;
        let cost = SimDuration::from_micros(150) + self.cfg.costs.persist_per_key * keys;
        let done = self.cpu.run_on(1, ctx.now(), cost).finished;
        ctx.timer_at(
            done,
            ServerMsg::PersistDone {
                slave,
                position,
                snapshot,
                start_offset,
            },
        );
    }

    /// Persist finished (or partial path): connect to the slave and send.
    fn begin_slave_transfer(
        &mut self,
        ctx: &mut Context<'_>,
        slave: SocketAddr,
        position: ReplicationPosition,
        snapshot: Option<(Vec<u8>, u64)>,
        resume_from: u64,
    ) {
        let mut frames: Vec<(u32, Vec<u8>)> = Vec::new();
        match snapshot {
            Some((rdb_bytes, start_offset)) => {
                self.stat_full_syncs += 1;
                frames.push((
                    tag::NODE,
                    NodeMsg::FullSyncBegin {
                        repl_id: self.repl_id,
                        start_offset,
                        total_bytes: rdb_bytes.len() as u64,
                    }
                    .encode(),
                ));
                for chunk in rdb_bytes.chunks(RDB_CHUNK.max(1)) {
                    frames.push((tag::RDB_CHUNK, chunk.to_vec()));
                }
                if rdb_bytes.is_empty() {
                    frames.push((tag::RDB_CHUNK, Vec::new()));
                }
                // Stream everything that happened since the snapshot.
                self.push_backlog_range(start_offset, &mut frames);
            }
            None => {
                self.stat_partial_syncs += 1;
                frames.push((
                    tag::NODE,
                    NodeMsg::PartialSyncBegin {
                        repl_id: self.repl_id,
                        from_offset: resume_from,
                        to_offset: self.backlog.offset(),
                    }
                    .encode(),
                ));
                self.push_backlog_range(resume_from, &mut frames);
            }
        }
        let _ = position;
        // Reuse an existing channel to this slave if one is open.
        if let Some(conn) = self.conn_of_kind(
            |k| matches!(k, ConnKind::Slave { addr, .. } if *addr == slave),
        ) {
            for (t, p) in frames {
                self.send_on(ctx, conn, t, &p);
            }
        } else {
            self.dial(ctx, slave, ConnectIntent::SyncSlave { frames });
        }
    }

    fn push_backlog_range(&self, from: u64, frames: &mut Vec<(u32, Vec<u8>)>) {
        if let Some(bytes) = self.backlog.range_from(from) {
            let mut offset = from;
            for chunk in bytes.chunks(STREAM_CHUNK) {
                frames.push((tag::REPL_STREAM, stream_frame(offset, chunk)));
                offset += chunk.len() as u64;
            }
        }
    }

    // -- slave-side synchronization -------------------------------------------

    fn begin_slaveof(&mut self, ctx: &mut Context<'_>, master: SocketAddr, nic: Option<SocketAddr>) {
        self.prior_slave_of = Some((master, nic));
        let position = ReplicationPosition::unsynced();
        self.role = Role::Slave {
            master,
            nic,
            syncing: true,
            rdb_expect: 0,
            rdb_buf: Vec::new(),
            rdb_start_offset: 0,
            stash: Vec::new(),
            resyncing: false,
        };
        self.send_sync_request(ctx, position);
    }

    fn send_sync_request(&mut self, ctx: &mut Context<'_>, position: ReplicationPosition) {
        let Role::Slave { master, nic, .. } = &self.role else {
            return;
        };
        let upstream = nic.unwrap_or(*master);
        let msg = NodeMsg::SyncRequest {
            slave: self.addr,
            position,
        }
        .encode();
        if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Nic)) {
            self.send_on(ctx, conn, tag::NODE, &msg);
        } else {
            // The connection to the upstream (Nic-KV or master) is reused
            // for probes and progress, so label it Nic.
            self.dial(
                ctx,
                upstream,
                ConnectIntent::SyncUpstream {
                    frames: vec![(tag::NODE, msg)],
                },
            );
        }
    }

    fn on_full_sync_begin(
        &mut self,
        conn: usize,
        repl_id: ReplicationId,
        start_offset: u64,
        total_bytes: u64,
    ) {
        self.conns[conn].kind = ConnKind::Master;
        if let Role::Slave {
            syncing,
            rdb_expect,
            rdb_buf,
            rdb_start_offset,
            ..
        } = &mut self.role
        {
            *syncing = true;
            *rdb_expect = total_bytes;
            *rdb_buf = Vec::with_capacity(total_bytes as usize);
            *rdb_start_offset = start_offset;
            self.repl_id = repl_id;
        }
    }

    fn on_rdb_chunk(&mut self, ctx: &mut Context<'_>, chunk: &[u8]) {
        let Role::Slave {
            rdb_expect,
            rdb_buf,
            rdb_start_offset,
            syncing,
            ..
        } = &mut self.role
        else {
            return;
        };
        rdb_buf.extend_from_slice(chunk);
        if (rdb_buf.len() as u64) < *rdb_expect {
            return;
        }
        // Snapshot complete: load it (charging CPU), then adopt the offset.
        let snapshot = std::mem::take(rdb_buf);
        let start_offset = *rdb_start_offset;
        *syncing = false;
        let loaded = {
            let seed = self.rng().gen_u64();
            rdb::load(self.engine.db_mut(), &snapshot, seed).expect("master sent valid RDB")
        };
        self.stat_full_syncs += 1;
        let cost = SimDuration::from_micros(100) + self.cfg.costs.load_per_key * loaded as u64;
        self.cpu.run_on(0, ctx.now(), cost);
        // Adopt the master's history at the snapshot point. The backlog is
        // reset by feeding a placeholder of the right length conceptually;
        // we track the slave offset via a dedicated counter instead.
        self.slave_set_offset(start_offset);
        self.drain_stash(ctx);
    }

    fn on_partial_sync_begin(&mut self, conn: usize, repl_id: ReplicationId) {
        self.conns[conn].kind = ConnKind::Master;
        self.repl_id = repl_id;
        if let Role::Slave {
            syncing, resyncing, ..
        } = &mut self.role
        {
            *syncing = false;
            *resyncing = false;
        }
        self.stat_partial_syncs += 1;
    }

    // The slave tracks its applied offset in `slave_offset`; stored in the
    // backlog-offset field of a master, but slaves don't use their backlog,
    // so keep a plain counter:
    fn slave_offset(&self) -> u64 {
        self.backlog.offset()
    }

    fn slave_set_offset(&mut self, offset: u64) {
        // Feed zero-bytes to advance the counter to `offset`. The backlog
        // content of a slave is never served, only the offset matters.
        let cur = self.backlog.offset();
        if offset > cur {
            let gap = (offset - cur) as usize;
            // Feed in bounded chunks to avoid one huge allocation.
            let mut left = gap;
            let chunk = vec![0u8; left.min(64 * 1024)];
            while left > 0 {
                let n = left.min(chunk.len());
                self.backlog.feed(&chunk[..n]);
                left -= n;
            }
        }
    }

    /// Apply a replication stream frame (slave side).
    fn on_repl_stream(&mut self, ctx: &mut Context<'_>, payload: Vec<u8>) {
        let Some((from_offset, bytes)) = parse_stream_frame(&payload) else {
            return;
        };
        let Role::Slave {
            syncing, stash, ..
        } = &mut self.role
        else {
            return;
        };
        if *syncing {
            stash.push((from_offset, bytes.to_vec()));
            return;
        }
        self.apply_stream(ctx, from_offset, bytes.to_vec());
        self.drain_stash(ctx);
    }

    fn drain_stash(&mut self, ctx: &mut Context<'_>) {
        let Role::Slave { stash, .. } = &mut self.role else {
            return;
        };
        if stash.is_empty() {
            return;
        }
        let mut pending = std::mem::take(stash);
        pending.sort_by_key(|(off, _)| *off);
        for (off, bytes) in pending {
            self.apply_stream(ctx, off, bytes);
        }
    }

    fn apply_stream(&mut self, ctx: &mut Context<'_>, from_offset: u64, bytes: Vec<u8>) {
        let my_offset = self.slave_offset();
        if from_offset > my_offset {
            // Gap: we missed bytes (e.g. we were crashed). Stash the frame
            // and ask the master for the missing range (self-healing
            // partial resync).
            let Role::Slave {
                stash, resyncing, ..
            } = &mut self.role
            else {
                return;
            };
            stash.push((from_offset, bytes));
            if !*resyncing {
                *resyncing = true;
                let pos = ReplicationPosition {
                    repl_id: self.repl_id,
                    offset: my_offset,
                };
                self.send_sync_request(ctx, pos);
            }
            return;
        }
        let skip = (my_offset - from_offset) as usize;
        if skip >= bytes.len() {
            return; // entirely duplicate
        }
        let fresh = &bytes[skip..];
        // Parse and execute each RESP command in the fresh region.
        let mut pos = 0;
        let now_ms = Self::now_ms(ctx);
        let mut applied = 0usize;
        let mut total_cost = SimDuration::ZERO;
        while pos < fresh.len() {
            match Resp::decode(&fresh[pos..]) {
                Decoded::Frame(v, used) => {
                    if let Ok(args) = v.into_command_args() {
                        let kib = used as f64 / 1024.0;
                        total_cost += self.cfg.costs.apply_base
                            + self.cfg.costs.cmd_per_kib.mul_f64(kib);
                        let _ = self.engine.execute(now_ms, &args);
                    }
                    pos += used;
                    applied = pos;
                }
                _ => break, // partial command (not expected: frames align)
            }
        }
        self.stat_applied_bytes += applied as u64;
        self.backlog.feed(&fresh[..applied]);
        if !total_cost.is_zero() {
            self.cpu.run_on(0, ctx.now(), total_cost);
        }
    }

    // -- node messages ---------------------------------------------------------

    fn on_node_msg(&mut self, ctx: &mut Context<'_>, conn: usize, msg: NodeMsg) {
        match msg {
            NodeMsg::SyncRequest { slave, position } => {
                // Arrives directly in baseline modes (and when a recovered
                // slave re-dials the master in any mode).
                self.on_sync_request(ctx, slave, position);
            }
            NodeMsg::SyncNotify { slave, position } => {
                // Relayed by Nic-KV (Fig. 8 ②).
                self.conns[conn].kind = ConnKind::Nic;
                self.on_sync_request(ctx, slave, position);
            }
            NodeMsg::FullSyncBegin {
                repl_id,
                start_offset,
                total_bytes,
            } => self.on_full_sync_begin(conn, repl_id, start_offset, total_bytes),
            NodeMsg::PartialSyncBegin { repl_id, .. } => {
                self.on_partial_sync_begin(conn, repl_id)
            }
            NodeMsg::ProgressReport { slave, offset } => {
                let mut worst_lag = 0u64;
                let master_offset = self.backlog.offset();
                for c in &mut self.conns {
                    if let ConnKind::Slave {
                        addr,
                        reported_offset,
                    } = &mut c.kind
                    {
                        if *addr == slave {
                            *reported_offset = (*reported_offset).max(offset);
                        }
                        if *reported_offset > 0 {
                            worst_lag = worst_lag
                                .max(master_offset.saturating_sub(*reported_offset));
                        }
                    }
                }
                // In SKV mode the lag verdict comes from Nic-KV, which
                // knows which slaves are still valid; the master's own
                // census would keep counting a crashed slave forever.
                if self.cfg.mode != Mode::Skv {
                    self.lag_exceeded = worst_lag > self.cfg.max_slave_lag;
                }
            }
            NodeMsg::Probe { seq } => {
                // Reply immediately (paper: "they reply to Nic-KV
                // immediately"); tiny cost on the event loop.
                self.cpu
                    .run_on(0, ctx.now(), SimDuration::from_nanos(300));
                let reply = NodeMsg::ProbeReply {
                    seq,
                    from: self.addr,
                }
                .encode();
                self.send_on(ctx, conn, tag::NODE, &reply);
            }
            NodeMsg::SlaveSetUpdate { available, lagging } => {
                self.available_slaves = available as usize;
                if self.cfg.mode == Mode::Skv {
                    self.lag_exceeded = lagging;
                }
            }
            NodeMsg::Promote => {
                self.role = Role::Master;
            }
            NodeMsg::Demote => {
                // Rejoin as a slave of the original master and resync from
                // the current offset. (A real system would also reconcile
                // any writes accepted while promoted; the paper's scenario
                // has the original master simply resume.)
                if let Some((master, nic)) = self.prior_slave_of {
                    self.role = Role::Slave {
                        master,
                        nic,
                        syncing: false,
                        rdb_expect: 0,
                        rdb_buf: Vec::new(),
                        rdb_start_offset: 0,
                        stash: Vec::new(),
                        resyncing: false,
                    };
                    let pos = ReplicationPosition {
                        repl_id: self.repl_id,
                        offset: self.slave_offset(),
                    };
                    self.send_sync_request(ctx, pos);
                }
            }
            NodeMsg::ProbeReply { .. } | NodeMsg::Replicate { .. } | NodeMsg::Hello { .. } => {}
        }
    }

    // -- cron -------------------------------------------------------------------

    fn on_cron(&mut self, ctx: &mut Context<'_>) {
        ctx.timer(SimDuration::from_millis(100), ServerMsg::Cron);
        if self.crashed {
            return;
        }
        self.engine.cron(Self::now_ms(ctx));
        // Slaves report progress on the master channel (Fig. 9 ③).
        if let Role::Slave { syncing: false, .. } = &self.role {
            let offset = self.slave_offset();
            if let Some(conn) = self.conn_of_kind(|k| matches!(k, ConnKind::Master)) {
                let msg = NodeMsg::ProgressReport {
                    slave: self.addr,
                    offset,
                }
                .encode();
                self.send_on(ctx, conn, tag::NODE, &msg);
            }
        }
    }

    // -- channel message routing --------------------------------------------------

    fn on_channel_msg(&mut self, ctx: &mut Context<'_>, conn: usize, msg: ChannelMsg) {
        match msg.tag {
            tag::CMD => self.on_client_command(ctx, conn, msg.payload),
            tag::NODE => {
                if let Some(m) = NodeMsg::decode(&msg.payload) {
                    self.on_node_msg(ctx, conn, m);
                }
            }
            tag::REPL_STREAM => self.on_repl_stream(ctx, msg.payload),
            tag::RDB_CHUNK => self.on_rdb_chunk(ctx, &msg.payload),
            _ => {}
        }
    }
}

/// Encode a replication stream frame: `[u64 from_offset][stream bytes]`.
pub fn stream_frame(from_offset: u64, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 8);
    out.extend_from_slice(&from_offset.to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decode a replication stream frame.
pub fn parse_stream_frame(frame: &[u8]) -> Option<(u64, &[u8])> {
    let header = frame.get(..8)?;
    let offset = u64::from_le_bytes(header.try_into().ok()?);
    Some((offset, &frame[8..]))
}

impl Actor for KvServer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.rng = Some(ctx.rng().split());
        self.started = true;
        let me = ctx.id();
        if self.cfg.mode.uses_rdma() {
            self.cq = Some(self.net.create_cq(me));
            self.net.rdma_listen(self.addr, me);
            let cq = self.cq.expect("just created");
            self.net.req_notify_cq(ctx, cq);
        } else {
            self.net.tcp_listen(self.addr, me);
        }
        ctx.timer(SimDuration::from_millis(100), ServerMsg::Cron);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        // Control events work even while crashed (Recover must).
        let msg = match msg.downcast::<Control>() {
            Ok(ctrl) => {
                match *ctrl {
                    Control::Slaveof { master, nic } => {
                        if !self.crashed {
                            self.begin_slaveof(ctx, master, nic);
                        }
                    }
                    Control::Crash => {
                        self.crashed = true;
                        self.net.set_node_up(self.node, false);
                    }
                    Control::ConnectNic { nic } => {
                        let hello = NodeMsg::Hello {
                            from: self.addr,
                            is_master: true,
                        }
                        .encode();
                        self.dial(
                            ctx,
                            nic,
                            ConnectIntent::SyncUpstream {
                                frames: vec![(tag::NODE, hello)],
                            },
                        );
                    }
                    Control::Recover => {
                        self.crashed = false;
                        self.net.set_node_up(self.node, true);
                        // Notifications delivered while crashed were lost;
                        // drain stale completions (replenishing receive
                        // slots) and re-arm the completion channel.
                        if let Some(cq) = self.cq {
                            loop {
                                let wcs = self.net.poll_cq(cq, 64);
                                if wcs.is_empty() {
                                    break;
                                }
                                for wc in wcs {
                                    if let Some(&conn) = self.by_qp.get(&wc.qp) {
                                        let net = self.net.clone();
                                        // Drop whatever the message was: the
                                        // process "restarted".
                                        let _ =
                                            self.conns[conn].channel.on_wc(&net, ctx, &wc);
                                    }
                                }
                            }
                            self.net.req_notify_cq(ctx, cq);
                        }
                        // A synced slave re-requests sync from its current
                        // offset; the backlog usually serves it partially.
                        if let Role::Slave { syncing: false, .. } = &self.role {
                            let pos = ReplicationPosition {
                                repl_id: self.repl_id,
                                offset: self.slave_offset(),
                            };
                            self.send_sync_request(ctx, pos);
                        }
                    }
                }
                return;
            }
            Err(other) => other,
        };
        if self.crashed {
            return; // a crashed process handles nothing
        }
        let msg = match msg.downcast::<ServerMsg>() {
            Ok(m) => {
                match *m {
                    ServerMsg::Cron => self.on_cron(ctx),
                    ServerMsg::SendFrames(frames) => {
                        for f in frames {
                            self.send_on(ctx, f.conn, f.tag, &f.payload);
                        }
                    }
                    ServerMsg::PersistDone {
                        slave,
                        position,
                        snapshot,
                        start_offset,
                    } => {
                        self.begin_slave_transfer(
                            ctx,
                            slave,
                            position,
                            Some((snapshot, start_offset)),
                            0,
                        );
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmConnectRequest { req, .. } => {
                // Accept now; the channel (ring registration, receive
                // posting, MR handshake) is created when CmEstablished
                // arrives, so both sides post receives before either
                // side's handshake SEND can land.
                let cq = self.cq.expect("rdma mode");
                let _qp = self.net.rdma_accept(ctx, req, cq);
            }
            NetEvent::CmEstablished { qp, peer } => {
                if self.by_qp.contains_key(&qp) {
                    return;
                }
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                let (kind, frames) = self.intent_to_kind(peer);
                let conn = self.add_conn(ch, kind);
                for (t, p) in frames {
                    self.send_on(ctx, conn, t, &p);
                }
            }
            NetEvent::CqNotify { cq } => {
                loop {
                    let wcs = self.net.poll_cq(cq, 64);
                    if wcs.is_empty() {
                        break;
                    }
                    for wc in wcs {
                        let Some(&conn) = self.by_qp.get(&wc.qp) else {
                            continue;
                        };
                        let net = self.net.clone();
                        if let Some(msg) = self.conns[conn].channel.on_wc(&net, ctx, &wc) {
                            self.on_channel_msg(ctx, conn, msg);
                        }
                    }
                }
                self.net.req_notify_cq(ctx, cq);
            }
            NetEvent::TcpAccepted { conn, .. } => {
                self.add_conn(Channel::tcp(conn), ConnKind::Unknown);
            }
            NetEvent::TcpConnected { conn, peer } => {
                let (kind, frames) = self.intent_to_kind(peer);
                let idx = self.add_conn(Channel::tcp(conn), kind);
                for (t, p) in frames {
                    self.send_on(ctx, idx, t, &p);
                }
            }
            NetEvent::TcpDelivered { conn, bytes } => {
                let Some(&idx) = self.by_tcp.get(&conn) else {
                    return;
                };
                let msgs = self.conns[idx].channel.on_tcp_bytes(&bytes);
                for m in msgs {
                    self.on_channel_msg(ctx, idx, m);
                }
            }
            NetEvent::TcpClosed { conn } => {
                if let Some(&idx) = self.by_tcp.get(&conn) {
                    self.conns[idx].open = false;
                }
            }
            NetEvent::TcpConnectFailed { .. } | NetEvent::CmConnectFailed { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "kv-server"
    }
}

impl KvServer {
    fn intent_to_kind(&mut self, peer: SocketAddr) -> (ConnKind, Vec<(u32, Vec<u8>)>) {
        match self.intents.remove(&peer) {
            Some(ConnectIntent::SyncSlave { frames }) => (
                ConnKind::Slave {
                    addr: peer,
                    reported_offset: 0,
                },
                frames,
            ),
            Some(ConnectIntent::SyncUpstream { frames }) => (ConnKind::Nic, frames),
            None => (ConnKind::Unknown, Vec::new()),
        }
    }
}
