//! # histcheck — client-visible operation histories + consistency checking
//!
//! The replication-mode work (see [`crate::replmode`]) promises different
//! guarantees per mode: linearizable writes for quorum and chain,
//! eventual convergence only for the async stream. Promises about
//! *client-visible* behaviour need client-visible evidence, so this
//! module records operation histories from dedicated probe actors during
//! chaos runs and checks them deterministically afterwards:
//!
//! * [`HistWriter`] — owns a namespaced key set (`h:{writer}:{key}`) and
//!   issues `SET key <seq>` to the master, one in flight, with strictly
//!   increasing `seq` per writer. Single-writer-per-key by construction.
//! * [`HistReader`] — issues `GET` for a random probe key to a set of
//!   target servers (the *anchor* plus optional quorum peers) and
//!   completes a read once the anchor and `read_quorum` targets
//!   responded, taking the **maximum** observed sequence number.
//! * [`check_single_writer`] — verifies the recorded history against the
//!   single-writer atomic-register conditions. An empty violation list
//!   is a linearizability witness for the probe keys; for the async
//!   arm the *expected* stale-read violations are the evidence that it
//!   only converges eventually.
//! * [`check_linearizable`] — the full multi-writer checker: a Wing &
//!   Gong–style per-key partitioned search over invocation/response
//!   windows with memoized state pruning. It ingests *bench* client
//!   histories (recorded behind `ClusterConfig::record_history`,
//!   including NIC-cache-served GETs and forwarded FWD_CMD replies),
//!   not just the side probes. [`check_linearizable_upto`] checks a
//!   prefix only — the tool for proving a history linearizable up to a
//!   declared cross-mode degradation point.
//!
//! Everything is deterministic: actors draw from split [`DetRng`]s, the
//! history lives in a [`SharedHistory`] the test inspects after the run.
//!
//! The checker is deliberately conservative about incomplete operations:
//! a write whose reply never arrived may or may not have taken effect,
//! so its value is *allowed* but never *required* to be observed. A
//! client that provably gave up *before observing anything* records an
//! explicit abort instead (see [`OpRecord::aborted`]) — without it, a
//! probe abandoned mid-plan under a partition would read as an
//! infinite-window op and over-constrain the search forever.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use skv_netsim::{CqId, DetMap, Net, NetEvent, NodeId, QpId, SocketAddr};
use skv_simcore::{Actor, ActorId, Context, DetRng, Payload, SimDuration, SimTime};
use skv_store::resp::{Decoded, Resp};

use crate::channel::{Channel, ChannelMsg};
use crate::config::ClusterConfig;
use crate::cqdrain;
use crate::protocol::tag;

/// What kind of operation a history record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A `SET key <seq>` by the key's single writer.
    Write,
    /// A quorum/anchor `GET` returning the maximum observed seq.
    Read,
}

/// One client-visible operation. Reads and writes share the record shape;
/// `seq` is the value written or observed (`0` = key absent).
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The probe key (`h:{writer:02}:{key:04}`).
    pub key: String,
    /// Read or write.
    pub kind: OpKind,
    /// Value written, or maximum value observed (0 = no value).
    pub seq: u64,
    /// Invocation instant (request sent).
    pub invoked: SimTime,
    /// Completion instant; `None` when the operation was abandoned (its
    /// effect is unknown — it may still land).
    pub completed: Option<SimTime>,
    /// Whether the completion was a success reply.
    pub ok: bool,
    /// Explicit abort: the client gave up on the operation *and* its
    /// outcome is provably unobservable (a reader watchdog firing, a
    /// bench read dropped on reconnect). Aborted reads observed nothing
    /// and are excluded from checking. A write that was actually sent is
    /// never aborted — it stays `completed: None` (maybe-applied).
    pub aborted: bool,
    /// For reads: the servers whose responses formed the read quorum.
    pub read_set: Vec<SocketAddr>,
}

/// A recorded history — all operations from all probe actors, in record
/// order (which is deterministic under the simulation).
#[derive(Debug, Default)]
pub struct History {
    /// The operations.
    pub ops: Vec<OpRecord>,
}

/// Shared handle to a [`History`]; the probe actors append, the test
/// reads after the run.
pub type SharedHistory = Rc<RefCell<History>>;

/// Fresh shared history.
pub fn new_history() -> SharedHistory {
    Rc::new(RefCell::new(History::default()))
}

/// One consistency violation found by [`check_single_writer`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key the violation occurred on.
    pub key: String,
    /// Human-readable description (times and sequence numbers).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.key, self.detail)
    }
}

/// Check a single-writer-per-key history against the atomic-register
/// linearizability conditions. Returns every violation found (empty =
/// the history is linearizable on the probe keys):
///
/// 1. **Value provenance** — a read's observed value was actually
///    written, and the write was invoked before the read completed.
/// 2. **Read freshness** — a read invoked after a write *completed
///    successfully* observes that write or a newer one. (This is the
///    condition async replication breaks under faults: the master acked
///    a write that a lagging anchor has not applied.)
/// 3. **Read monotonicity** — of two non-overlapping reads on a key, the
///    later never observes an older value than the earlier (no "time
///    travel" between quorums).
///
/// Incomplete or failed operations are treated conservatively: their
/// effects are allowed but never required.
pub fn check_single_writer(history: &History) -> Vec<Violation> {
    let mut by_key: BTreeMap<&str, (Vec<&OpRecord>, Vec<&OpRecord>)> = BTreeMap::new();
    for op in &history.ops {
        let entry = by_key.entry(op.key.as_str()).or_default();
        match op.kind {
            OpKind::Write => entry.0.push(op),
            OpKind::Read => entry.1.push(op),
        }
    }
    let mut violations = Vec::new();
    for (key, (writes, reads)) in by_key {
        let done_reads: Vec<&OpRecord> = reads
            .iter()
            .copied()
            .filter(|r| r.ok && r.completed.is_some())
            .collect();
        for r in &done_reads {
            let Some(r_done) = r.completed else { continue };
            // 1. Provenance: the value must come from a write invoked
            // before the read completed.
            if r.seq != 0 && !writes.iter().any(|w| w.seq == r.seq && w.invoked < r_done) {
                violations.push(Violation {
                    key: key.to_string(),
                    detail: format!(
                        "read at {:?} observed {} which was never written before it",
                        r_done, r.seq
                    ),
                });
            }
            // 2. Freshness: at least the newest write that completed
            // successfully before the read was invoked.
            let floor = writes
                .iter()
                .filter(|w| w.ok && w.completed.is_some_and(|t| t < r.invoked))
                .map(|w| w.seq)
                .max()
                .unwrap_or(0);
            if r.seq < floor {
                violations.push(Violation {
                    key: key.to_string(),
                    detail: format!(
                        "stale read: observed {} at {:?} but write {} completed before {:?}",
                        r.seq, r_done, floor, r.invoked
                    ),
                });
            }
        }
        // 3. Monotonicity across non-overlapping reads.
        for (i, r1) in done_reads.iter().enumerate() {
            let Some(r1_done) = r1.completed else {
                continue;
            };
            for r2 in &done_reads[i + 1..] {
                let (first, second) = if r1_done <= r2.invoked {
                    (*r1, *r2)
                } else if r2.completed.is_some_and(|t| t <= r1.invoked) {
                    (*r2, *r1)
                } else {
                    continue; // overlapping — either order is legal
                };
                if second.seq < first.seq {
                    violations.push(Violation {
                        key: key.to_string(),
                        detail: format!("non-monotone reads: {} then {}", first.seq, second.seq),
                    });
                }
            }
        }
    }
    violations
}

/// Count of stale-read violations only (condition 2) — the signal the
/// async-mode chaos arm asserts on.
pub fn stale_reads(violations: &[Violation]) -> usize {
    violations
        .iter()
        .filter(|v| v.detail.starts_with("stale read"))
        .count()
}

// ---------------------------------------------------------------------------
// Multi-writer linearizability (Wing & Gong-style search)
// ---------------------------------------------------------------------------

/// Per-key state budget for the exhaustive search: the maximum number of
/// memoized states explored before the checker gives up *loudly*.
/// Mostly-sequential histories (closed-loop clients) stay near-linear in
/// ops; only a genuinely ambiguous — or non-linearizable — history gets
/// anywhere near this.
const SEARCH_BUDGET: usize = 200_000;

/// One operation as the search sees it after classification.
struct SearchOp {
    /// Invocation instant.
    inv: SimTime,
    /// Response instant; `SimTime::MAX` marks an open window (a
    /// maybe-applied write may linearize at any point after `inv`).
    resp: SimTime,
    /// Write (sets the register) or read (must observe it).
    is_write: bool,
    /// Value written or observed (`0` = key absent).
    value: u64,
    /// Required ops must appear in the linearization; optional ops
    /// (maybe-applied writes) may be dropped.
    required: bool,
}

/// Classify a key's records into search operations.
///
/// * Completed successful writes are **required** with their real window.
/// * Incomplete and error-reply writes are **optional** with an open
///   window — they may have applied, so their effect is allowed from
///   invocation on but never demanded. (Extending an errored write's
///   window past its reply is deliberate slack: it only *admits* more
///   schedules, so it can never produce a false rejection.)
/// * Completed successful reads are **required** — the register must
///   hold their observed value at the chosen point.
/// * Aborted, incomplete and error reads observed nothing: dropped.
fn classify(recs: &[&OpRecord]) -> Vec<SearchOp> {
    let mut out = Vec::new();
    for op in recs {
        if op.aborted {
            continue;
        }
        match op.kind {
            OpKind::Write => {
                let (resp, required) = match op.completed {
                    Some(t) if op.ok => (t, true),
                    _ => (SimTime::MAX, false),
                };
                out.push(SearchOp {
                    inv: op.invoked,
                    resp,
                    is_write: true,
                    value: op.seq,
                    required,
                });
            }
            OpKind::Read => {
                if let Some(t) = op.completed {
                    if op.ok {
                        out.push(SearchOp {
                            inv: op.invoked,
                            resp: t,
                            is_write: false,
                            value: op.seq,
                            required: true,
                        });
                    }
                }
            }
        }
    }
    out
}

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Cheap register-semantics screens run before the exhaustive search.
/// Every condition here is implied by linearizability (given unique
/// per-key write values and no deletions — both guaranteed by the
/// recording paths), so a hit is a definite counterexample with a
/// legible message: `stale read`, `phantom read` or `non-monotone`.
fn quick_register_checks(key: &str, recs: &[&OpRecord]) -> Vec<Violation> {
    let writes: Vec<&OpRecord> = recs
        .iter()
        .copied()
        .filter(|o| o.kind == OpKind::Write && !o.aborted)
        .collect();
    let reads: Vec<&OpRecord> = recs
        .iter()
        .copied()
        .filter(|o| o.kind == OpKind::Read && o.ok && o.completed.is_some() && !o.aborted)
        .collect();
    // value → (invoked, completed-if-ok) for O(log) precedence lookups.
    let mut wmap: BTreeMap<u64, (SimTime, Option<SimTime>)> = BTreeMap::new();
    for w in &writes {
        let done = if w.ok { w.completed } else { None };
        wmap.entry(w.seq)
            .and_modify(|e| {
                e.0 = e.0.min(w.invoked);
                e.1 = match (e.1, done) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            })
            .or_insert((w.invoked, done));
    }
    // `a` strictly precedes instant `t` when its success reply landed
    // before `t`.
    let done_before = |v: u64, t: SimTime| {
        wmap.get(&v)
            .and_then(|&(_, done)| done)
            .is_some_and(|d| d < t)
    };
    let mut out = Vec::new();
    for r in &reads {
        let r_done = r.completed.unwrap_or(SimTime::MAX);
        // 1. Provenance: the observed value must come from a write that
        //    was invoked before the read completed.
        if r.seq != 0 && wmap.get(&r.seq).is_none_or(|&(inv, _)| inv >= r_done) {
            out.push(Violation {
                key: key.to_string(),
                detail: format!(
                    "phantom read: observed {} at {:?} which no write before it produced",
                    r.seq, r_done
                ),
            });
            continue;
        }
        // 2. Freshness: if some write w_new completed successfully
        //    strictly before the read was invoked, the read may not
        //    observe nothing, nor a value whose write strictly preceded
        //    w_new (the register never reverts).
        for w_new in writes.iter().filter(|w| w.ok && done_before(w.seq, r.invoked)) {
            let stale = if r.seq == 0 {
                true
            } else {
                r.seq != w_new.seq && done_before(r.seq, w_new.invoked)
            };
            if stale {
                out.push(Violation {
                    key: key.to_string(),
                    detail: format!(
                        "stale read: observed {} at {:?} but write {} completed before {:?}",
                        r.seq, r_done, w_new.seq, r.invoked
                    ),
                });
                break;
            }
        }
    }
    // 3. Monotonicity across non-overlapping reads: the later read never
    //    observes a strictly older value than the earlier.
    for (i, r1) in reads.iter().enumerate() {
        let r1_done = r1.completed.unwrap_or(SimTime::MAX);
        for r2 in &reads[i + 1..] {
            let r2_done = r2.completed.unwrap_or(SimTime::MAX);
            let (first, second) = if r1_done < r2.invoked {
                (r1, r2)
            } else if r2_done < r1.invoked {
                (r2, r1)
            } else {
                continue; // overlapping — either order is legal
            };
            if first.seq == second.seq {
                continue;
            }
            let regress = (second.seq == 0 && first.seq != 0)
                || (second.seq != 0 && done_before(second.seq, wmap.get(&first.seq).map_or(SimTime::ZERO, |e| e.0)));
            if regress {
                out.push(Violation {
                    key: key.to_string(),
                    detail: format!("non-monotone reads: {} then {}", first.seq, second.seq),
                });
            }
        }
    }
    out
}

/// Exhaustive per-key search. Returns `None` when a valid linearization
/// exists, or one violation describing why not (or that the budget ran
/// out — treated as a failure, never a silent pass).
fn search_key(key: &str, recs: &[&OpRecord]) -> Option<Violation> {
    let ops = classify(recs);
    let n = ops.len();
    if n == 0 {
        return None;
    }
    let req_total = ops.iter().filter(|o| o.required).count();
    if req_total == 0 {
        return None; // only maybe-applied writes: trivially fine
    }
    let words = n.div_ceil(64);
    let mut visited: std::collections::BTreeSet<(Vec<u64>, u64)> = std::collections::BTreeSet::new();
    let mut stack: Vec<(Vec<u64>, u64)> = Vec::new();
    let init = (vec![0u64; words], 0u64);
    visited.insert(init.clone());
    stack.push(init);
    let mut best_done = 0usize;
    let mut best_note = String::new();
    while let Some((done, reg)) = stack.pop() {
        if visited.len() > SEARCH_BUDGET {
            return Some(Violation {
                key: key.to_string(),
                detail: format!(
                    "search budget exceeded: {} states over {n} ops without a verdict — treating as a failure",
                    visited.len()
                ),
            });
        }
        let done_req = ops
            .iter()
            .enumerate()
            .filter(|(i, o)| o.required && bit_get(&done, *i))
            .count();
        if done_req == req_total {
            return None; // all required ops linearized — witness found
        }
        if done_req >= best_done {
            best_done = done_req;
            if let Some((_, o)) = ops
                .iter()
                .enumerate()
                .filter(|(i, o)| o.required && !bit_get(&done, *i))
                .min_by_key(|(_, o)| o.inv)
            {
                let kind = if o.is_write { "write" } else { "read" };
                best_note = format!(
                    "first unplaced op: {kind} of {} invoked at {:?} (register held {reg})",
                    o.value, o.inv
                );
            }
        }
        // An op may be linearized next iff no *required* unlinearized op
        // responded strictly before its invocation.
        let min_resp = ops
            .iter()
            .enumerate()
            .filter(|(i, o)| o.required && !bit_get(&done, *i))
            .map(|(_, o)| o.resp)
            .min()
            .unwrap_or(SimTime::MAX);
        for (i, o) in ops.iter().enumerate() {
            if bit_get(&done, i) || o.inv > min_resp {
                continue;
            }
            if !o.is_write && o.value != reg {
                continue; // a read must observe the current register
            }
            let mut nd = done.clone();
            bit_set(&mut nd, i);
            let nreg = if o.is_write { o.value } else { reg };
            let st = (nd, nreg);
            if visited.insert(st.clone()) {
                stack.push(st);
            }
        }
    }
    Some(Violation {
        key: key.to_string(),
        detail: format!(
            "not linearizable: no valid order for {req_total} required ops (best schedule placed {best_done}; {best_note})"
        ),
    })
}

/// Full multi-writer linearizability check against atomic-register
/// semantics, partitioned per key. Returns every violation found; an
/// empty list is a linearizability witness for the recorded history.
///
/// Assumes per-key write values are unique and keys are never deleted —
/// both guaranteed by the recording paths (probe writers use strictly
/// increasing per-writer sequences; bench recording stamps values with
/// `client-id ≪ 40 | counter`).
pub fn check_linearizable(history: &History) -> Vec<Violation> {
    let mut by_key: BTreeMap<&str, Vec<&OpRecord>> = BTreeMap::new();
    for op in &history.ops {
        by_key.entry(op.key.as_str()).or_default().push(op);
    }
    let mut violations = Vec::new();
    for (key, recs) in by_key {
        let quick = quick_register_checks(key, &recs);
        if !quick.is_empty() {
            // Definite counterexamples with legible messages; skip the
            // expensive search for an already-rejected key.
            violations.extend(quick);
            continue;
        }
        if let Some(v) = search_key(key, &recs) {
            violations.push(v);
        }
    }
    violations
}

/// Check only the prefix of the history before `cutoff` — the tool for
/// proving a run linearizable *up to a declared degradation point*
/// (cross-mode failover demotes quorum to async mid-run; everything
/// invoked before the demotion instant must still linearize).
///
/// Ops invoked at or after `cutoff` are outside the claim and dropped;
/// ops that completed at or after it are treated as still-open within
/// the prefix (maybe-applied writes, unobserved reads).
pub fn check_linearizable_upto(history: &History, cutoff: SimTime) -> Vec<Violation> {
    let trimmed = History {
        ops: history
            .ops
            .iter()
            .filter(|op| op.invoked < cutoff)
            .map(|op| {
                let mut op = (*op).clone();
                if op.completed.is_some_and(|t| t >= cutoff) {
                    op.completed = None;
                    op.ok = false;
                }
                op
            })
            .collect(),
    };
    check_linearizable(&trimmed)
}

impl History {
    /// Serialize the history as a JSON event log, one object per
    /// operation in record order — the artifact `scripts/check.sh`
    /// uploads when the histcheck smoke fails. Hand-rolled on purpose
    /// (no serde in the workspace): keys are ASCII identifiers with no
    /// characters needing escapes.
    pub fn event_log_json(&self) -> String {
        let mut s = String::from("[\n");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            let kind = match op.kind {
                OpKind::Write => "write",
                OpKind::Read => "read",
            };
            let completed = op
                .completed
                .map_or_else(|| "null".to_string(), |t| t.as_nanos().to_string());
            s.push_str(&format!(
                "  {{\"key\":\"{}\",\"kind\":\"{kind}\",\"value\":{},\"invoked_ns\":{},\"completed_ns\":{completed},\"ok\":{},\"aborted\":{}}}",
                op.key,
                op.seq,
                op.invoked.as_nanos(),
                op.ok,
                op.aborted
            ));
        }
        s.push_str("\n]\n");
        s
    }
}

/// The probe key for `(writer, key_idx)`; namespaced away from the
/// benchmark keyspace.
pub fn probe_key(writer: usize, key_idx: usize) -> String {
    format!("h:{writer:02}:{key_idx:04}")
}

/// Where a [`HistReader`] anchors its reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAnchor {
    /// Read from the master only (quorum-mode arm: the master holds
    /// every committed write).
    Master,
    /// Read from one slave only (async arm: exposes staleness; chain
    /// arm with the tail index: the commit point).
    Slave(usize),
    /// Read from the master plus enough slaves for a majority of the
    /// replica set (ABD-style read quorum).
    MasterQuorum,
}

/// Shape of a history probe deployment (see `Cluster::add_history`).
#[derive(Debug, Clone)]
pub struct HistSpec {
    /// Number of single-writer actors (each owns its key namespace).
    pub writers: usize,
    /// Keys per writer.
    pub keys_per_writer: usize,
    /// Number of reader actors.
    pub readers: usize,
    /// Read anchoring.
    pub anchor: ReadAnchor,
    /// Think time between a completion and the next operation.
    pub op_gap: SimDuration,
}

impl Default for HistSpec {
    fn default() -> Self {
        HistSpec {
            writers: 2,
            keys_per_writer: 4,
            readers: 2,
            anchor: ReadAnchor::Master,
            op_gap: SimDuration::from_micros(30),
        }
    }
}

enum ProbeMsg {
    Start,
    IssueNext,
    Watchdog,
}

/// Single-writer probe actor: `SET probe_key <seq>` to the master, one
/// operation in flight, strictly increasing `seq`.
pub struct HistWriter {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    server: SocketAddr,
    history: SharedHistory,
    writer_id: usize,
    keys: usize,
    op_gap: SimDuration,
    start_at: SimTime,
    stop_at: SimTime,
    seq: u64,
    cq: Option<CqId>,
    channel: Option<Channel>,
    /// Index into the shared history of the op awaiting its reply.
    in_flight: Option<usize>,
    dial_attempts: u32,
}

impl HistWriter {
    /// Create a writer probe targeting `server` (the master).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: Net,
        cfg: ClusterConfig,
        node: NodeId,
        server: SocketAddr,
        history: SharedHistory,
        writer_id: usize,
        keys: usize,
        op_gap: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> Self {
        HistWriter {
            net,
            cfg,
            node,
            server,
            history,
            writer_id,
            keys: keys.max(1),
            op_gap,
            start_at,
            stop_at,
            seq: 0,
            cq: None,
            channel: None,
            in_flight: None,
            dial_attempts: 0,
        }
    }

    fn dial(&mut self, ctx: &mut Context<'_>) {
        if self.channel.is_some() {
            return;
        }
        let me = ctx.id();
        if self.cfg.mode.uses_rdma() {
            let cq = match self.cq {
                Some(cq) => cq,
                None => {
                    let cq = self.net.create_cq(me);
                    self.cq = Some(cq);
                    self.net.req_notify_cq(ctx, cq);
                    cq
                }
            };
            self.net.rdma_connect(ctx, self.node, me, cq, self.server);
        } else {
            self.net.tcp_connect(ctx, self.node, me, self.server);
        }
    }

    fn abandon(&mut self, ctx: &mut Context<'_>) {
        // The in-flight op stays incomplete in the history: its effect is
        // unknown (the checker treats it as maybe-applied).
        self.in_flight = None;
        if let Some(ch) = self.channel.take() {
            if let Some(qp) = ch.qp() {
                self.net.destroy_qp(qp);
            }
            if let Some(conn) = ch.tcp_conn() {
                self.net.tcp_close(ctx, conn);
            }
        }
        ctx.timer(SimDuration::from_millis(1), ProbeMsg::Start);
    }

    fn issue(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.stop_at || self.in_flight.is_some() {
            return;
        }
        let Some(channel) = self.channel.as_mut() else {
            return;
        };
        if channel.broken() {
            // Don't record an op we provably cannot send: a dangling
            // invocation would read as an infinite-window maybe-applied
            // write. The watchdog redials and re-issues.
            return;
        }
        self.seq += 1;
        let key = probe_key(
            self.writer_id,
            usize::try_from(self.seq).unwrap_or(0) % self.keys,
        );
        let value = self.seq.to_string();
        let cmd = Resp::command([b"SET".as_slice(), key.as_bytes(), value.as_bytes()]);
        let idx = {
            let mut h = self.history.borrow_mut();
            h.ops.push(OpRecord {
                key,
                kind: OpKind::Write,
                seq: self.seq,
                invoked: ctx.now(),
                completed: None,
                ok: false,
                aborted: false,
                read_set: Vec::new(),
            });
            h.ops.len() - 1
        };
        self.in_flight = Some(idx);
        let net = self.net.clone();
        channel.send(&net, ctx, tag::CMD, cmd.encode());
    }

    fn on_reply(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        let Some(idx) = self.in_flight.take() else {
            return;
        };
        let is_error = payload.first() == Some(&b'-');
        let mut h = self.history.borrow_mut();
        if let Some(op) = h.ops.get_mut(idx) {
            op.completed = Some(ctx.now());
            op.ok = !is_error;
        }
        drop(h);
        ctx.timer(self.op_gap, ProbeMsg::IssueNext);
    }
}

impl Actor for HistWriter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.timer_at(self.start_at, ProbeMsg::Start);
        ctx.timer_at(
            self.start_at + self.cfg.client_retry_timeout,
            ProbeMsg::Watchdog,
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let msg = match msg.downcast::<ProbeMsg>() {
            Ok(m) => {
                match *m {
                    ProbeMsg::Start => self.dial(ctx),
                    ProbeMsg::IssueNext => self.issue(ctx),
                    ProbeMsg::Watchdog => {
                        let now = ctx.now();
                        if now >= self.stop_at && self.in_flight.is_none() {
                            return;
                        }
                        let timeout = self.cfg.client_retry_timeout;
                        let stuck = self.in_flight.is_some_and(|idx| {
                            self.history
                                .borrow()
                                .ops
                                .get(idx)
                                .is_some_and(|op| now.saturating_since(op.invoked) > timeout)
                        });
                        let broken = self.channel.as_ref().is_some_and(Channel::broken);
                        if stuck || broken {
                            self.abandon(ctx);
                        }
                        ctx.timer(timeout, ProbeMsg::Watchdog);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmEstablished { qp, .. } => {
                if self.channel.is_some() {
                    return;
                }
                self.dial_attempts = 0;
                let net = self.net.clone();
                self.channel = Some(Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size));
                self.issue(ctx);
            }
            NetEvent::TcpConnected { conn, .. } => {
                self.dial_attempts = 0;
                self.channel = Some(Channel::tcp(conn));
                self.issue(ctx);
            }
            NetEvent::CqNotify { cq } => {
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let mut broken = false;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    if broken {
                        return;
                    }
                    let Some(ch) = self.channel.as_mut() else {
                        return;
                    };
                    if let Some(ChannelMsg { tag: t, payload }) = ch.on_wc(&net, ctx, &wc) {
                        if t == tag::REPLY {
                            self.on_reply(ctx, &payload);
                        }
                    } else if self.channel.as_ref().is_some_and(Channel::broken) {
                        broken = true;
                    }
                });
                if out.more {
                    ctx.timer_at(ctx.now(), NetEvent::CqNotify { cq });
                }
                if broken {
                    self.abandon(ctx);
                }
            }
            NetEvent::TcpDelivered { bytes, .. } => {
                let msgs = self
                    .channel
                    .as_mut()
                    .map(|ch| ch.on_tcp_bytes(bytes))
                    .unwrap_or_default();
                for m in msgs {
                    if m.tag == tag::REPLY {
                        self.on_reply(ctx, &m.payload);
                    }
                }
            }
            NetEvent::TcpClosed { .. } if ctx.now() < self.stop_at => self.abandon(ctx),
            NetEvent::CmConnectFailed { .. } | NetEvent::TcpConnectFailed { .. } => {
                self.dial_attempts = self.dial_attempts.saturating_add(1);
                let delay = self.cfg.client_dial_delay(self.dial_attempts);
                ctx.timer(delay, ProbeMsg::Start);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "hist-writer"
    }
}

/// Parse a GET reply into the observed sequence number. `NullBulk` (key
/// absent) observes 0; errors and malformed values observe nothing.
fn parse_observed(payload: &[u8]) -> Option<u64> {
    match Resp::decode(payload) {
        Decoded::Frame(Resp::NullBulk, _) => Some(0),
        Decoded::Frame(Resp::Bulk(b), _) => {
            std::str::from_utf8(&b).ok().and_then(|s| s.parse().ok())
        }
        _ => None,
    }
}

struct TargetConn {
    addr: SocketAddr,
    channel: Option<Channel>,
    /// Read generations with a GET outstanding on this channel, oldest
    /// first (replies arrive in FIFO order per channel).
    outstanding: VecDeque<u64>,
}

/// Multi-target read probe: GETs a random probe key from every connected
/// target and completes once the anchor (`targets[0]`) plus
/// `read_quorum` total targets responded, observing the maximum value.
/// RDMA modes only (one CQ multiplexes all target QPs).
pub struct HistReader {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    targets: Vec<TargetConn>,
    read_quorum: usize,
    history: SharedHistory,
    writers: usize,
    keys_per_writer: usize,
    op_gap: SimDuration,
    start_at: SimTime,
    stop_at: SimTime,
    rng: DetRng,
    cq: Option<CqId>,
    by_qp: DetMap<QpId, usize>,
    cur_gen: u64,
    /// Index into the shared history of the read in progress.
    cur_op: Option<usize>,
    /// Per-target observation for the current generation.
    got: Vec<Option<u64>>,
}

impl HistReader {
    /// Create a reader probe. `targets[0]` is the anchor; a read needs
    /// the anchor plus `read_quorum` total responders.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: Net,
        cfg: ClusterConfig,
        node: NodeId,
        targets: Vec<SocketAddr>,
        read_quorum: usize,
        history: SharedHistory,
        writers: usize,
        keys_per_writer: usize,
        op_gap: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> Self {
        let got = vec![None; targets.len()];
        HistReader {
            net,
            cfg,
            node,
            targets: targets
                .into_iter()
                .map(|addr| TargetConn {
                    addr,
                    channel: None,
                    outstanding: VecDeque::new(),
                })
                .collect(),
            read_quorum: read_quorum.max(1),
            history,
            writers: writers.max(1),
            keys_per_writer: keys_per_writer.max(1),
            op_gap,
            start_at,
            stop_at,
            rng: DetRng::new(0),
            cq: None,
            by_qp: DetMap::new(),
            cur_gen: 0,
            cur_op: None,
            got,
        }
    }

    fn dial_missing(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.id();
        let cq = match self.cq {
            Some(cq) => cq,
            None => {
                let cq = self.net.create_cq(me);
                self.cq = Some(cq);
                self.net.req_notify_cq(ctx, cq);
                cq
            }
        };
        for t in &mut self.targets {
            if let Some(ch) = t.channel.as_ref() {
                if !ch.broken() {
                    continue;
                }
            }
            if let Some(ch) = t.channel.take() {
                if let Some(qp) = ch.qp() {
                    self.net.destroy_qp(qp);
                }
                t.outstanding.clear();
            }
            self.net.rdma_connect(ctx, self.node, me, cq, t.addr);
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.stop_at || self.cur_op.is_some() {
            return;
        }
        // No anchor connection → nothing can complete; back off and retry.
        if self.targets.first().is_some_and(|t| t.channel.is_none()) {
            ctx.timer(self.cfg.client_retry_timeout, ProbeMsg::IssueNext);
            return;
        }
        let writer = usize::try_from(self.rng.below(self.writers as u64)).unwrap_or(0);
        let key_idx = usize::try_from(self.rng.below(self.keys_per_writer as u64)).unwrap_or(0);
        let key = probe_key(writer, key_idx);
        let cmd = Resp::command([b"GET".as_slice(), key.as_bytes()]).encode();
        self.cur_gen += 1;
        for g in &mut self.got {
            *g = None;
        }
        let idx = {
            let mut h = self.history.borrow_mut();
            h.ops.push(OpRecord {
                key,
                kind: OpKind::Read,
                seq: 0,
                invoked: ctx.now(),
                completed: None,
                ok: false,
                aborted: false,
                read_set: Vec::new(),
            });
            h.ops.len() - 1
        };
        self.cur_op = Some(idx);
        let net = self.net.clone();
        let gen = self.cur_gen;
        for t in &mut self.targets {
            let Some(ch) = t.channel.as_mut() else {
                continue;
            };
            ch.send(&net, ctx, tag::CMD, cmd.clone());
            t.outstanding.push_back(gen);
        }
        self.maybe_complete(ctx);
    }

    /// Record target `ti`'s reply for the generation it answers; complete
    /// the current read when anchor + quorum responded.
    fn on_get_reply(&mut self, ctx: &mut Context<'_>, ti: usize, payload: &[u8]) {
        let Some(gen) = self.targets[ti].outstanding.pop_front() else {
            return;
        };
        if gen != self.cur_gen || self.cur_op.is_none() {
            return; // reply for an abandoned generation
        }
        if let Some(v) = parse_observed(payload) {
            self.got[ti] = Some(v);
        }
        self.maybe_complete(ctx);
    }

    fn maybe_complete(&mut self, ctx: &mut Context<'_>) {
        let Some(idx) = self.cur_op else { return };
        if self.got.first().copied().flatten().is_none() {
            return; // anchor has not answered
        }
        let responders = self.got.iter().filter(|g| g.is_some()).count();
        if responders < self.read_quorum {
            return;
        }
        let observed = self.got.iter().flatten().copied().max().unwrap_or(0);
        let read_set: Vec<SocketAddr> = self
            .targets
            .iter()
            .zip(&self.got)
            .filter(|(_, g)| g.is_some())
            .map(|(t, _)| t.addr)
            .collect();
        {
            let mut h = self.history.borrow_mut();
            if let Some(op) = h.ops.get_mut(idx) {
                op.completed = Some(ctx.now());
                op.ok = true;
                op.seq = observed;
                op.read_set = read_set;
            }
        }
        self.cur_op = None;
        ctx.timer(self.op_gap, ProbeMsg::IssueNext);
    }
}

impl Actor for HistReader {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.rng = ctx.rng().split();
        ctx.timer_at(self.start_at, ProbeMsg::Start);
        ctx.timer_at(
            self.start_at + self.cfg.client_retry_timeout,
            ProbeMsg::Watchdog,
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let msg = match msg.downcast::<ProbeMsg>() {
            Ok(m) => {
                match *m {
                    ProbeMsg::Start => {
                        self.dial_missing(ctx);
                        ctx.timer(self.op_gap, ProbeMsg::IssueNext);
                    }
                    ProbeMsg::IssueNext => self.issue(ctx),
                    ProbeMsg::Watchdog => {
                        let now = ctx.now();
                        if now >= self.stop_at && self.cur_op.is_none() {
                            return;
                        }
                        let timeout = self.cfg.client_retry_timeout;
                        let stuck = self.cur_op.is_some_and(|idx| {
                            self.history
                                .borrow()
                                .ops
                                .get(idx)
                                .is_some_and(|op| now.saturating_since(op.invoked) > timeout)
                        });
                        if stuck {
                            // Abandon the read and record an *explicit
                            // abort*: its value was provably never
                            // observed, so the checker drops it instead
                            // of treating it as an infinite-window op
                            // (which a dial backoff under a partition
                            // would otherwise leave behind every time a
                            // probe gives up mid-plan).
                            if let Some(idx) = self.cur_op.take() {
                                let mut h = self.history.borrow_mut();
                                if let Some(op) = h.ops.get_mut(idx) {
                                    op.aborted = true;
                                }
                            }
                            self.dial_missing(ctx);
                            ctx.timer(self.op_gap, ProbeMsg::IssueNext);
                        }
                        ctx.timer(timeout, ProbeMsg::Watchdog);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmEstablished { qp, peer } => {
                let Some(ti) = self.targets.iter().position(|t| t.addr == peer) else {
                    return;
                };
                if self.targets[ti].channel.is_some() {
                    return;
                }
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                self.by_qp.insert(qp, ti);
                self.targets[ti].channel = Some(ch);
            }
            NetEvent::CmConnectFailed { .. } => {
                // The watchdog retries; losing one target only costs
                // quorum membership until then.
            }
            NetEvent::CqNotify { cq } => {
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    let Some(&ti) = self.by_qp.get(&wc.qp) else {
                        return;
                    };
                    let Some(ch) = self.targets[ti].channel.as_mut() else {
                        return;
                    };
                    if let Some(ChannelMsg { tag: t, payload }) = ch.on_wc(&net, ctx, &wc) {
                        if t == tag::REPLY {
                            self.on_get_reply(ctx, ti, &payload);
                        }
                    }
                    // Broken channels stay in place until the watchdog
                    // redials: `outstanding` bookkeeping dies with them.
                });
                if out.more {
                    ctx.timer_at(ctx.now(), NetEvent::CqNotify { cq });
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "hist-reader"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn write(key: &str, seq: u64, inv: u64, done: u64) -> OpRecord {
        OpRecord {
            key: key.into(),
            kind: OpKind::Write,
            seq,
            invoked: t(inv),
            completed: Some(t(done)),
            ok: true,
            aborted: false,
            read_set: Vec::new(),
        }
    }

    fn read(key: &str, seq: u64, inv: u64, done: u64) -> OpRecord {
        OpRecord {
            key: key.into(),
            kind: OpKind::Read,
            seq,
            invoked: t(inv),
            completed: Some(t(done)),
            ok: true,
            aborted: false,
            read_set: Vec::new(),
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                read("k", 1, 20, 30),
                write("k", 2, 40, 50),
                read("k", 2, 60, 70),
            ],
        };
        assert!(check_single_writer(&h).is_empty());
    }

    #[test]
    fn stale_read_is_flagged() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                write("k", 2, 20, 30),
                read("k", 1, 40, 50), // write 2 completed before — stale
            ],
        };
        let v = check_single_writer(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(stale_reads(&v), 1);
    }

    #[test]
    fn phantom_value_is_flagged() {
        let h = History {
            ops: vec![write("k", 1, 0, 10), read("k", 7, 20, 30)],
        };
        let v = check_single_writer(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(stale_reads(&v), 0);
    }

    #[test]
    fn non_monotone_reads_are_flagged() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                // Write 2 never completed (abandoned) — observing it is
                // legal, but un-observing it afterwards is not.
                OpRecord {
                    completed: None,
                    ok: false,
                    ..write("k", 2, 15, 0)
                },
                read("k", 2, 20, 30),
                read("k", 1, 40, 50),
            ],
        };
        let v = check_single_writer(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("non-monotone"), "{v:?}");
    }

    #[test]
    fn incomplete_and_overlapping_ops_are_tolerated() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                // In-flight write: reads may see 1 or 2.
                OpRecord {
                    completed: None,
                    ok: false,
                    ..write("k", 2, 15, 0)
                },
                // Overlapping reads: one sees the new value, one does not.
                read("k", 2, 20, 30),
                read("k", 2, 25, 40),
                read("k", 2, 50, 60),
            ],
        };
        assert!(check_single_writer(&h).is_empty());
    }

    #[test]
    fn null_reads_before_any_write_pass() {
        let h = History {
            ops: vec![
                read("k", 0, 0, 5),
                write("k", 1, 10, 20),
                read("k", 1, 30, 40),
            ],
        };
        assert!(check_single_writer(&h).is_empty());
    }

    #[test]
    fn observed_parse_handles_replies() {
        assert_eq!(parse_observed(&Resp::NullBulk.encode()), Some(0));
        assert_eq!(
            parse_observed(&Resp::Bulk(b"42".to_vec()).encode()),
            Some(42)
        );
        assert_eq!(parse_observed(&Resp::Bulk(b"x".to_vec()).encode()), None);
        assert_eq!(parse_observed(b"-ERR nope\r\n"), None);
    }

    #[test]
    fn probe_keys_are_namespaced_and_stable() {
        assert_eq!(probe_key(1, 2), "h:01:0002");
        assert_ne!(probe_key(1, 2), probe_key(2, 1));
    }

    // -- multi-writer checker -------------------------------------------

    #[test]
    fn multi_writer_clean_history_is_linearizable() {
        // Two writers with unique values, overlapping windows, reads that
        // can all be ordered consistently.
        let h = History {
            ops: vec![
                write("k", 101, 0, 30),
                write("k", 201, 10, 40), // concurrent with 101
                read("k", 201, 50, 60),
                write("k", 102, 55, 70),
                read("k", 102, 80, 90),
                read("k", 102, 85, 95),
            ],
        };
        let v = check_linearizable(&h);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn known_bad_stale_read_fixture_is_rejected() {
        // The seeded known-bad fixture: write 2 completed before the read
        // was invoked, yet the read observed the older value 1. The
        // checker must produce a counterexample, not a pass.
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                write("k", 2, 20, 30),
                read("k", 1, 40, 50),
            ],
        };
        let v = check_linearizable(&h);
        assert!(!v.is_empty(), "checker passed a stale-read history");
        assert!(stale_reads(&v) >= 1, "{v:?}");
    }

    #[test]
    fn concurrent_write_order_contradiction_is_rejected() {
        // Both writes complete before any read, so the register order of
        // (1, 2) is fixed by read time — observing 1, then 2, then 1
        // again has no valid schedule. The quick screens cannot see this
        // (neither write strictly precedes the other); only the search
        // rejects it.
        let h = History {
            ops: vec![
                write("k", 1, 0, 100),
                write("k", 2, 0, 100),
                read("k", 1, 110, 120),
                read("k", 2, 130, 140),
                read("k", 1, 150, 160),
            ],
        };
        let v = check_linearizable(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("not linearizable"), "{v:?}");
    }

    #[test]
    fn maybe_applied_write_windows_are_honored() {
        // The incomplete write 2 may linearize anywhere after its
        // invocation; reads observing it are legal, and it is never
        // required.
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                OpRecord {
                    completed: None,
                    ok: false,
                    ..write("k", 2, 15, 0)
                },
                read("k", 2, 20, 30),
                read("k", 2, 25, 40),
                read("k", 2, 50, 60),
            ],
        };
        let v = check_linearizable(&h);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn aborted_reads_are_dropped() {
        // An aborted read carries garbage; with the abort flag the
        // checker excludes it, without the flag the same record would
        // fail provenance.
        let mut bad = read("k", 999, 20, 30);
        bad.aborted = true;
        let h = History {
            ops: vec![write("k", 1, 0, 10), bad, read("k", 1, 40, 50)],
        };
        let v = check_linearizable(&h);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn prefix_check_stops_at_the_degradation_point() {
        // The stale read happens after the cutoff: the full check rejects
        // the history, the prefix check accepts it.
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                write("k", 2, 20, 30),
                read("k", 1, 40, 50),
            ],
        };
        assert!(!check_linearizable(&h).is_empty());
        assert!(check_linearizable_upto(&h, t(35)).is_empty());
        // An op spanning the cutoff is treated as still-open: write 2
        // becomes maybe-applied, so the read of 1 stays legal even when
        // it slips inside the prefix.
        let h2 = History {
            ops: vec![
                write("k", 1, 0, 10),
                write("k", 2, 20, 60),
                read("k", 1, 30, 40),
            ],
        };
        assert!(check_linearizable_upto(&h2, t(50)).is_empty());
    }

    #[test]
    fn event_log_json_lists_every_op() {
        let mut aborted = read("k", 0, 20, 0);
        aborted.completed = None;
        aborted.ok = false;
        aborted.aborted = true;
        let h = History {
            ops: vec![write("k", 1, 0, 10), aborted],
        };
        let json = h.event_log_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"kind\":\"write\""), "{json}");
        assert!(json.contains("\"completed_ns\":null"), "{json}");
        assert!(json.contains("\"aborted\":true"), "{json}");
        assert_eq!(json.matches("\"key\":").count(), 2, "{json}");
    }
}
