//! # histcheck — client-visible operation histories + consistency checking
//!
//! The replication-mode work (see [`crate::replmode`]) promises different
//! guarantees per mode: linearizable writes for quorum and chain,
//! eventual convergence only for the async stream. Promises about
//! *client-visible* behaviour need client-visible evidence, so this
//! module records operation histories from dedicated probe actors during
//! chaos runs and checks them deterministically afterwards:
//!
//! * [`HistWriter`] — owns a namespaced key set (`h:{writer}:{key}`) and
//!   issues `SET key <seq>` to the master, one in flight, with strictly
//!   increasing `seq` per writer. Single-writer-per-key by construction.
//! * [`HistReader`] — issues `GET` for a random probe key to a set of
//!   target servers (the *anchor* plus optional quorum peers) and
//!   completes a read once the anchor and `read_quorum` targets
//!   responded, taking the **maximum** observed sequence number.
//! * [`check_single_writer`] — verifies the recorded history against the
//!   single-writer atomic-register conditions. An empty violation list
//!   is a linearizability witness for the probe keys; for the async
//!   arm the *expected* stale-read violations are the evidence that it
//!   only converges eventually.
//!
//! Everything is deterministic: actors draw from split [`DetRng`]s, the
//! history lives in a [`SharedHistory`] the test inspects after the run.
//!
//! The checker is deliberately conservative about incomplete operations:
//! a write whose reply never arrived may or may not have taken effect,
//! so its value is *allowed* but never *required* to be observed.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use skv_netsim::{CqId, DetMap, Net, NetEvent, NodeId, QpId, SocketAddr};
use skv_simcore::{Actor, ActorId, Context, DetRng, Payload, SimDuration, SimTime};
use skv_store::resp::{Decoded, Resp};

use crate::channel::{Channel, ChannelMsg};
use crate::config::ClusterConfig;
use crate::cqdrain;
use crate::protocol::tag;

/// What kind of operation a history record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A `SET key <seq>` by the key's single writer.
    Write,
    /// A quorum/anchor `GET` returning the maximum observed seq.
    Read,
}

/// One client-visible operation. Reads and writes share the record shape;
/// `seq` is the value written or observed (`0` = key absent).
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The probe key (`h:{writer:02}:{key:04}`).
    pub key: String,
    /// Read or write.
    pub kind: OpKind,
    /// Value written, or maximum value observed (0 = no value).
    pub seq: u64,
    /// Invocation instant (request sent).
    pub invoked: SimTime,
    /// Completion instant; `None` when the operation was abandoned (its
    /// effect is unknown — it may still land).
    pub completed: Option<SimTime>,
    /// Whether the completion was a success reply.
    pub ok: bool,
    /// For reads: the servers whose responses formed the read quorum.
    pub read_set: Vec<SocketAddr>,
}

/// A recorded history — all operations from all probe actors, in record
/// order (which is deterministic under the simulation).
#[derive(Debug, Default)]
pub struct History {
    /// The operations.
    pub ops: Vec<OpRecord>,
}

/// Shared handle to a [`History`]; the probe actors append, the test
/// reads after the run.
pub type SharedHistory = Rc<RefCell<History>>;

/// Fresh shared history.
pub fn new_history() -> SharedHistory {
    Rc::new(RefCell::new(History::default()))
}

/// One consistency violation found by [`check_single_writer`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key the violation occurred on.
    pub key: String,
    /// Human-readable description (times and sequence numbers).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.key, self.detail)
    }
}

/// Check a single-writer-per-key history against the atomic-register
/// linearizability conditions. Returns every violation found (empty =
/// the history is linearizable on the probe keys):
///
/// 1. **Value provenance** — a read's observed value was actually
///    written, and the write was invoked before the read completed.
/// 2. **Read freshness** — a read invoked after a write *completed
///    successfully* observes that write or a newer one. (This is the
///    condition async replication breaks under faults: the master acked
///    a write that a lagging anchor has not applied.)
/// 3. **Read monotonicity** — of two non-overlapping reads on a key, the
///    later never observes an older value than the earlier (no "time
///    travel" between quorums).
///
/// Incomplete or failed operations are treated conservatively: their
/// effects are allowed but never required.
pub fn check_single_writer(history: &History) -> Vec<Violation> {
    let mut by_key: BTreeMap<&str, (Vec<&OpRecord>, Vec<&OpRecord>)> = BTreeMap::new();
    for op in &history.ops {
        let entry = by_key.entry(op.key.as_str()).or_default();
        match op.kind {
            OpKind::Write => entry.0.push(op),
            OpKind::Read => entry.1.push(op),
        }
    }
    let mut violations = Vec::new();
    for (key, (writes, reads)) in by_key {
        let done_reads: Vec<&OpRecord> = reads
            .iter()
            .copied()
            .filter(|r| r.ok && r.completed.is_some())
            .collect();
        for r in &done_reads {
            let Some(r_done) = r.completed else { continue };
            // 1. Provenance: the value must come from a write invoked
            // before the read completed.
            if r.seq != 0 && !writes.iter().any(|w| w.seq == r.seq && w.invoked < r_done) {
                violations.push(Violation {
                    key: key.to_string(),
                    detail: format!(
                        "read at {:?} observed {} which was never written before it",
                        r_done, r.seq
                    ),
                });
            }
            // 2. Freshness: at least the newest write that completed
            // successfully before the read was invoked.
            let floor = writes
                .iter()
                .filter(|w| w.ok && w.completed.is_some_and(|t| t < r.invoked))
                .map(|w| w.seq)
                .max()
                .unwrap_or(0);
            if r.seq < floor {
                violations.push(Violation {
                    key: key.to_string(),
                    detail: format!(
                        "stale read: observed {} at {:?} but write {} completed before {:?}",
                        r.seq, r_done, floor, r.invoked
                    ),
                });
            }
        }
        // 3. Monotonicity across non-overlapping reads.
        for (i, r1) in done_reads.iter().enumerate() {
            let Some(r1_done) = r1.completed else {
                continue;
            };
            for r2 in &done_reads[i + 1..] {
                let (first, second) = if r1_done <= r2.invoked {
                    (*r1, *r2)
                } else if r2.completed.is_some_and(|t| t <= r1.invoked) {
                    (*r2, *r1)
                } else {
                    continue; // overlapping — either order is legal
                };
                if second.seq < first.seq {
                    violations.push(Violation {
                        key: key.to_string(),
                        detail: format!("non-monotone reads: {} then {}", first.seq, second.seq),
                    });
                }
            }
        }
    }
    violations
}

/// Count of stale-read violations only (condition 2) — the signal the
/// async-mode chaos arm asserts on.
pub fn stale_reads(violations: &[Violation]) -> usize {
    violations
        .iter()
        .filter(|v| v.detail.starts_with("stale read"))
        .count()
}

/// The probe key for `(writer, key_idx)`; namespaced away from the
/// benchmark keyspace.
pub fn probe_key(writer: usize, key_idx: usize) -> String {
    format!("h:{writer:02}:{key_idx:04}")
}

/// Where a [`HistReader`] anchors its reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAnchor {
    /// Read from the master only (quorum-mode arm: the master holds
    /// every committed write).
    Master,
    /// Read from one slave only (async arm: exposes staleness; chain
    /// arm with the tail index: the commit point).
    Slave(usize),
    /// Read from the master plus enough slaves for a majority of the
    /// replica set (ABD-style read quorum).
    MasterQuorum,
}

/// Shape of a history probe deployment (see `Cluster::add_history`).
#[derive(Debug, Clone)]
pub struct HistSpec {
    /// Number of single-writer actors (each owns its key namespace).
    pub writers: usize,
    /// Keys per writer.
    pub keys_per_writer: usize,
    /// Number of reader actors.
    pub readers: usize,
    /// Read anchoring.
    pub anchor: ReadAnchor,
    /// Think time between a completion and the next operation.
    pub op_gap: SimDuration,
}

impl Default for HistSpec {
    fn default() -> Self {
        HistSpec {
            writers: 2,
            keys_per_writer: 4,
            readers: 2,
            anchor: ReadAnchor::Master,
            op_gap: SimDuration::from_micros(30),
        }
    }
}

enum ProbeMsg {
    Start,
    IssueNext,
    Watchdog,
}

/// Single-writer probe actor: `SET probe_key <seq>` to the master, one
/// operation in flight, strictly increasing `seq`.
pub struct HistWriter {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    server: SocketAddr,
    history: SharedHistory,
    writer_id: usize,
    keys: usize,
    op_gap: SimDuration,
    start_at: SimTime,
    stop_at: SimTime,
    seq: u64,
    cq: Option<CqId>,
    channel: Option<Channel>,
    /// Index into the shared history of the op awaiting its reply.
    in_flight: Option<usize>,
    dial_attempts: u32,
}

impl HistWriter {
    /// Create a writer probe targeting `server` (the master).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: Net,
        cfg: ClusterConfig,
        node: NodeId,
        server: SocketAddr,
        history: SharedHistory,
        writer_id: usize,
        keys: usize,
        op_gap: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> Self {
        HistWriter {
            net,
            cfg,
            node,
            server,
            history,
            writer_id,
            keys: keys.max(1),
            op_gap,
            start_at,
            stop_at,
            seq: 0,
            cq: None,
            channel: None,
            in_flight: None,
            dial_attempts: 0,
        }
    }

    fn dial(&mut self, ctx: &mut Context<'_>) {
        if self.channel.is_some() {
            return;
        }
        let me = ctx.id();
        if self.cfg.mode.uses_rdma() {
            let cq = match self.cq {
                Some(cq) => cq,
                None => {
                    let cq = self.net.create_cq(me);
                    self.cq = Some(cq);
                    self.net.req_notify_cq(ctx, cq);
                    cq
                }
            };
            self.net.rdma_connect(ctx, self.node, me, cq, self.server);
        } else {
            self.net.tcp_connect(ctx, self.node, me, self.server);
        }
    }

    fn abandon(&mut self, ctx: &mut Context<'_>) {
        // The in-flight op stays incomplete in the history: its effect is
        // unknown (the checker treats it as maybe-applied).
        self.in_flight = None;
        if let Some(ch) = self.channel.take() {
            if let Some(qp) = ch.qp() {
                self.net.destroy_qp(qp);
            }
            if let Some(conn) = ch.tcp_conn() {
                self.net.tcp_close(ctx, conn);
            }
        }
        ctx.timer(SimDuration::from_millis(1), ProbeMsg::Start);
    }

    fn issue(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.stop_at || self.in_flight.is_some() {
            return;
        }
        let Some(channel) = self.channel.as_mut() else {
            return;
        };
        self.seq += 1;
        let key = probe_key(
            self.writer_id,
            usize::try_from(self.seq).unwrap_or(0) % self.keys,
        );
        let value = self.seq.to_string();
        let cmd = Resp::command([b"SET".as_slice(), key.as_bytes(), value.as_bytes()]);
        let idx = {
            let mut h = self.history.borrow_mut();
            h.ops.push(OpRecord {
                key,
                kind: OpKind::Write,
                seq: self.seq,
                invoked: ctx.now(),
                completed: None,
                ok: false,
                read_set: Vec::new(),
            });
            h.ops.len() - 1
        };
        self.in_flight = Some(idx);
        let net = self.net.clone();
        channel.send(&net, ctx, tag::CMD, cmd.encode());
    }

    fn on_reply(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        let Some(idx) = self.in_flight.take() else {
            return;
        };
        let is_error = payload.first() == Some(&b'-');
        let mut h = self.history.borrow_mut();
        if let Some(op) = h.ops.get_mut(idx) {
            op.completed = Some(ctx.now());
            op.ok = !is_error;
        }
        drop(h);
        ctx.timer(self.op_gap, ProbeMsg::IssueNext);
    }
}

impl Actor for HistWriter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.timer_at(self.start_at, ProbeMsg::Start);
        ctx.timer_at(
            self.start_at + self.cfg.client_retry_timeout,
            ProbeMsg::Watchdog,
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let msg = match msg.downcast::<ProbeMsg>() {
            Ok(m) => {
                match *m {
                    ProbeMsg::Start => self.dial(ctx),
                    ProbeMsg::IssueNext => self.issue(ctx),
                    ProbeMsg::Watchdog => {
                        let now = ctx.now();
                        if now >= self.stop_at && self.in_flight.is_none() {
                            return;
                        }
                        let timeout = self.cfg.client_retry_timeout;
                        let stuck = self.in_flight.is_some_and(|idx| {
                            self.history
                                .borrow()
                                .ops
                                .get(idx)
                                .is_some_and(|op| now.saturating_since(op.invoked) > timeout)
                        });
                        let broken = self.channel.as_ref().is_some_and(Channel::broken);
                        if stuck || broken {
                            self.abandon(ctx);
                        }
                        ctx.timer(timeout, ProbeMsg::Watchdog);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmEstablished { qp, .. } => {
                if self.channel.is_some() {
                    return;
                }
                self.dial_attempts = 0;
                let net = self.net.clone();
                self.channel = Some(Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size));
                self.issue(ctx);
            }
            NetEvent::TcpConnected { conn, .. } => {
                self.dial_attempts = 0;
                self.channel = Some(Channel::tcp(conn));
                self.issue(ctx);
            }
            NetEvent::CqNotify { cq } => {
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let mut broken = false;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    if broken {
                        return;
                    }
                    let Some(ch) = self.channel.as_mut() else {
                        return;
                    };
                    if let Some(ChannelMsg { tag: t, payload }) = ch.on_wc(&net, ctx, &wc) {
                        if t == tag::REPLY {
                            self.on_reply(ctx, &payload);
                        }
                    } else if self.channel.as_ref().is_some_and(Channel::broken) {
                        broken = true;
                    }
                });
                if out.more {
                    ctx.timer_at(ctx.now(), NetEvent::CqNotify { cq });
                }
                if broken {
                    self.abandon(ctx);
                }
            }
            NetEvent::TcpDelivered { bytes, .. } => {
                let msgs = self
                    .channel
                    .as_mut()
                    .map(|ch| ch.on_tcp_bytes(bytes))
                    .unwrap_or_default();
                for m in msgs {
                    if m.tag == tag::REPLY {
                        self.on_reply(ctx, &m.payload);
                    }
                }
            }
            NetEvent::TcpClosed { .. } if ctx.now() < self.stop_at => self.abandon(ctx),
            NetEvent::CmConnectFailed { .. } | NetEvent::TcpConnectFailed { .. } => {
                self.dial_attempts = self.dial_attempts.saturating_add(1);
                let delay = self.cfg.client_dial_delay(self.dial_attempts);
                ctx.timer(delay, ProbeMsg::Start);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "hist-writer"
    }
}

/// Parse a GET reply into the observed sequence number. `NullBulk` (key
/// absent) observes 0; errors and malformed values observe nothing.
fn parse_observed(payload: &[u8]) -> Option<u64> {
    match Resp::decode(payload) {
        Decoded::Frame(Resp::NullBulk, _) => Some(0),
        Decoded::Frame(Resp::Bulk(b), _) => {
            std::str::from_utf8(&b).ok().and_then(|s| s.parse().ok())
        }
        _ => None,
    }
}

struct TargetConn {
    addr: SocketAddr,
    channel: Option<Channel>,
    /// Read generations with a GET outstanding on this channel, oldest
    /// first (replies arrive in FIFO order per channel).
    outstanding: VecDeque<u64>,
}

/// Multi-target read probe: GETs a random probe key from every connected
/// target and completes once the anchor (`targets[0]`) plus
/// `read_quorum` total targets responded, observing the maximum value.
/// RDMA modes only (one CQ multiplexes all target QPs).
pub struct HistReader {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    targets: Vec<TargetConn>,
    read_quorum: usize,
    history: SharedHistory,
    writers: usize,
    keys_per_writer: usize,
    op_gap: SimDuration,
    start_at: SimTime,
    stop_at: SimTime,
    rng: DetRng,
    cq: Option<CqId>,
    by_qp: DetMap<QpId, usize>,
    cur_gen: u64,
    /// Index into the shared history of the read in progress.
    cur_op: Option<usize>,
    /// Per-target observation for the current generation.
    got: Vec<Option<u64>>,
}

impl HistReader {
    /// Create a reader probe. `targets[0]` is the anchor; a read needs
    /// the anchor plus `read_quorum` total responders.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: Net,
        cfg: ClusterConfig,
        node: NodeId,
        targets: Vec<SocketAddr>,
        read_quorum: usize,
        history: SharedHistory,
        writers: usize,
        keys_per_writer: usize,
        op_gap: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> Self {
        let got = vec![None; targets.len()];
        HistReader {
            net,
            cfg,
            node,
            targets: targets
                .into_iter()
                .map(|addr| TargetConn {
                    addr,
                    channel: None,
                    outstanding: VecDeque::new(),
                })
                .collect(),
            read_quorum: read_quorum.max(1),
            history,
            writers: writers.max(1),
            keys_per_writer: keys_per_writer.max(1),
            op_gap,
            start_at,
            stop_at,
            rng: DetRng::new(0),
            cq: None,
            by_qp: DetMap::new(),
            cur_gen: 0,
            cur_op: None,
            got,
        }
    }

    fn dial_missing(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.id();
        let cq = match self.cq {
            Some(cq) => cq,
            None => {
                let cq = self.net.create_cq(me);
                self.cq = Some(cq);
                self.net.req_notify_cq(ctx, cq);
                cq
            }
        };
        for t in &mut self.targets {
            if let Some(ch) = t.channel.as_ref() {
                if !ch.broken() {
                    continue;
                }
            }
            if let Some(ch) = t.channel.take() {
                if let Some(qp) = ch.qp() {
                    self.net.destroy_qp(qp);
                }
                t.outstanding.clear();
            }
            self.net.rdma_connect(ctx, self.node, me, cq, t.addr);
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.stop_at || self.cur_op.is_some() {
            return;
        }
        // No anchor connection → nothing can complete; back off and retry.
        if self.targets.first().is_some_and(|t| t.channel.is_none()) {
            ctx.timer(self.cfg.client_retry_timeout, ProbeMsg::IssueNext);
            return;
        }
        let writer = usize::try_from(self.rng.below(self.writers as u64)).unwrap_or(0);
        let key_idx = usize::try_from(self.rng.below(self.keys_per_writer as u64)).unwrap_or(0);
        let key = probe_key(writer, key_idx);
        let cmd = Resp::command([b"GET".as_slice(), key.as_bytes()]).encode();
        self.cur_gen += 1;
        for g in &mut self.got {
            *g = None;
        }
        let idx = {
            let mut h = self.history.borrow_mut();
            h.ops.push(OpRecord {
                key,
                kind: OpKind::Read,
                seq: 0,
                invoked: ctx.now(),
                completed: None,
                ok: false,
                read_set: Vec::new(),
            });
            h.ops.len() - 1
        };
        self.cur_op = Some(idx);
        let net = self.net.clone();
        let gen = self.cur_gen;
        for t in &mut self.targets {
            let Some(ch) = t.channel.as_mut() else {
                continue;
            };
            ch.send(&net, ctx, tag::CMD, cmd.clone());
            t.outstanding.push_back(gen);
        }
        self.maybe_complete(ctx);
    }

    /// Record target `ti`'s reply for the generation it answers; complete
    /// the current read when anchor + quorum responded.
    fn on_get_reply(&mut self, ctx: &mut Context<'_>, ti: usize, payload: &[u8]) {
        let Some(gen) = self.targets[ti].outstanding.pop_front() else {
            return;
        };
        if gen != self.cur_gen || self.cur_op.is_none() {
            return; // reply for an abandoned generation
        }
        if let Some(v) = parse_observed(payload) {
            self.got[ti] = Some(v);
        }
        self.maybe_complete(ctx);
    }

    fn maybe_complete(&mut self, ctx: &mut Context<'_>) {
        let Some(idx) = self.cur_op else { return };
        if self.got.first().copied().flatten().is_none() {
            return; // anchor has not answered
        }
        let responders = self.got.iter().filter(|g| g.is_some()).count();
        if responders < self.read_quorum {
            return;
        }
        let observed = self.got.iter().flatten().copied().max().unwrap_or(0);
        let read_set: Vec<SocketAddr> = self
            .targets
            .iter()
            .zip(&self.got)
            .filter(|(_, g)| g.is_some())
            .map(|(t, _)| t.addr)
            .collect();
        {
            let mut h = self.history.borrow_mut();
            if let Some(op) = h.ops.get_mut(idx) {
                op.completed = Some(ctx.now());
                op.ok = true;
                op.seq = observed;
                op.read_set = read_set;
            }
        }
        self.cur_op = None;
        ctx.timer(self.op_gap, ProbeMsg::IssueNext);
    }
}

impl Actor for HistReader {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.rng = ctx.rng().split();
        ctx.timer_at(self.start_at, ProbeMsg::Start);
        ctx.timer_at(
            self.start_at + self.cfg.client_retry_timeout,
            ProbeMsg::Watchdog,
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let msg = match msg.downcast::<ProbeMsg>() {
            Ok(m) => {
                match *m {
                    ProbeMsg::Start => {
                        self.dial_missing(ctx);
                        ctx.timer(self.op_gap, ProbeMsg::IssueNext);
                    }
                    ProbeMsg::IssueNext => self.issue(ctx),
                    ProbeMsg::Watchdog => {
                        let now = ctx.now();
                        if now >= self.stop_at && self.cur_op.is_none() {
                            return;
                        }
                        let timeout = self.cfg.client_retry_timeout;
                        let stuck = self.cur_op.is_some_and(|idx| {
                            self.history
                                .borrow()
                                .ops
                                .get(idx)
                                .is_some_and(|op| now.saturating_since(op.invoked) > timeout)
                        });
                        if stuck {
                            // Abandon the read (left incomplete) and move
                            // on; redial anything broken.
                            self.cur_op = None;
                            self.dial_missing(ctx);
                            ctx.timer(self.op_gap, ProbeMsg::IssueNext);
                        }
                        ctx.timer(timeout, ProbeMsg::Watchdog);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmEstablished { qp, peer } => {
                let Some(ti) = self.targets.iter().position(|t| t.addr == peer) else {
                    return;
                };
                if self.targets[ti].channel.is_some() {
                    return;
                }
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                self.by_qp.insert(qp, ti);
                self.targets[ti].channel = Some(ch);
            }
            NetEvent::CmConnectFailed { .. } => {
                // The watchdog retries; losing one target only costs
                // quorum membership until then.
            }
            NetEvent::CqNotify { cq } => {
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    let Some(&ti) = self.by_qp.get(&wc.qp) else {
                        return;
                    };
                    let Some(ch) = self.targets[ti].channel.as_mut() else {
                        return;
                    };
                    if let Some(ChannelMsg { tag: t, payload }) = ch.on_wc(&net, ctx, &wc) {
                        if t == tag::REPLY {
                            self.on_get_reply(ctx, ti, &payload);
                        }
                    }
                    // Broken channels stay in place until the watchdog
                    // redials: `outstanding` bookkeeping dies with them.
                });
                if out.more {
                    ctx.timer_at(ctx.now(), NetEvent::CqNotify { cq });
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "hist-reader"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn write(key: &str, seq: u64, inv: u64, done: u64) -> OpRecord {
        OpRecord {
            key: key.into(),
            kind: OpKind::Write,
            seq,
            invoked: t(inv),
            completed: Some(t(done)),
            ok: true,
            read_set: Vec::new(),
        }
    }

    fn read(key: &str, seq: u64, inv: u64, done: u64) -> OpRecord {
        OpRecord {
            key: key.into(),
            kind: OpKind::Read,
            seq,
            invoked: t(inv),
            completed: Some(t(done)),
            ok: true,
            read_set: Vec::new(),
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                read("k", 1, 20, 30),
                write("k", 2, 40, 50),
                read("k", 2, 60, 70),
            ],
        };
        assert!(check_single_writer(&h).is_empty());
    }

    #[test]
    fn stale_read_is_flagged() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                write("k", 2, 20, 30),
                read("k", 1, 40, 50), // write 2 completed before — stale
            ],
        };
        let v = check_single_writer(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(stale_reads(&v), 1);
    }

    #[test]
    fn phantom_value_is_flagged() {
        let h = History {
            ops: vec![write("k", 1, 0, 10), read("k", 7, 20, 30)],
        };
        let v = check_single_writer(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(stale_reads(&v), 0);
    }

    #[test]
    fn non_monotone_reads_are_flagged() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                // Write 2 never completed (abandoned) — observing it is
                // legal, but un-observing it afterwards is not.
                OpRecord {
                    completed: None,
                    ok: false,
                    ..write("k", 2, 15, 0)
                },
                read("k", 2, 20, 30),
                read("k", 1, 40, 50),
            ],
        };
        let v = check_single_writer(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("non-monotone"), "{v:?}");
    }

    #[test]
    fn incomplete_and_overlapping_ops_are_tolerated() {
        let h = History {
            ops: vec![
                write("k", 1, 0, 10),
                // In-flight write: reads may see 1 or 2.
                OpRecord {
                    completed: None,
                    ok: false,
                    ..write("k", 2, 15, 0)
                },
                // Overlapping reads: one sees the new value, one does not.
                read("k", 2, 20, 30),
                read("k", 2, 25, 40),
                read("k", 2, 50, 60),
            ],
        };
        assert!(check_single_writer(&h).is_empty());
    }

    #[test]
    fn null_reads_before_any_write_pass() {
        let h = History {
            ops: vec![
                read("k", 0, 0, 5),
                write("k", 1, 10, 20),
                read("k", 1, 30, 40),
            ],
        };
        assert!(check_single_writer(&h).is_empty());
    }

    #[test]
    fn observed_parse_handles_replies() {
        assert_eq!(parse_observed(&Resp::NullBulk.encode()), Some(0));
        assert_eq!(
            parse_observed(&Resp::Bulk(b"42".to_vec()).encode()),
            Some(42)
        );
        assert_eq!(parse_observed(&Resp::Bulk(b"x".to_vec()).encode()), None);
        assert_eq!(parse_observed(b"-ERR nope\r\n"), None);
    }

    #[test]
    fn probe_keys_are_namespaced_and_stable() {
        assert_eq!(probe_key(1, 2), "h:01:0002");
        assert_ne!(probe_key(1, 2), probe_key(2, 1));
    }
}
