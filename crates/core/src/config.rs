//! Cluster and server configuration.

use crate::replmode::ReplModeKind;
use skv_netsim::{MachineParams, NetParams};
use skv_simcore::SimDuration;

/// Which system variant a cluster runs — the paper's three contenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Original Redis: kernel TCP transport, replication fan-out on the
    /// master host (Figure 10 baseline).
    TcpRedis,
    /// Redis with the network layer replaced by RDMA; replication still
    /// posts one Work Request per slave from the master host, serially
    /// (Figures 7, 10–13 baseline).
    RdmaRedis,
    /// SKV: RDMA transport plus replication and failure detection offloaded
    /// to the SmartNIC's Nic-KV (the paper's contribution).
    Skv,
}

impl Mode {
    /// Human-readable name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Mode::TcpRedis => "Redis",
            Mode::RdmaRedis => "RDMA-Redis",
            Mode::Skv => "SKV",
        }
    }

    /// Does this mode use the RDMA transport?
    pub fn uses_rdma(self) -> bool {
        !matches!(self, Mode::TcpRedis)
    }
}

/// CPU cost model for server-side command processing, in reference-core
/// time. Calibrated so RDMA-Redis SET saturates near the paper's
/// ~330 kops/s and original Redis near ~130 kops/s (Figure 10).
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Fixed cost to read/parse/dispatch one command and build its reply.
    pub cmd_base: SimDuration,
    /// Additional cost per KiB of payload touched (memcpy, hashing).
    pub cmd_per_kib: SimDuration,
    /// Cost for a slave to apply one replicated command.
    pub apply_base: SimDuration,
    /// RDB persist cost per key (master side, initial sync).
    pub persist_per_key: SimDuration,
    /// RDB load cost per key (slave side, initial sync).
    pub load_per_key: SimDuration,
    /// Nic-KV cost to parse one replication request (reference-core time;
    /// the SmartNIC's core pool scales it by the ARM speed factor).
    pub nic_fanout_base: SimDuration,
    /// Nic-KV cost per slave per replicated message (ring write + WR post).
    pub nic_per_slave: SimDuration,
    /// Relative jitter applied to service times (gives realistic p99s).
    pub jitter: f64,
    /// Probability that any single *doorbell* stalls (doorbell/CQ
    /// contention). The stall is a property of the MMIO doorbell write,
    /// so it is drawn once per `post_send` call — a linked-WR post list
    /// rings one doorbell and risks one stall no matter how many WRs it
    /// chains. More doorbells per operation ⇒ more frequent stalls ⇒
    /// heavier tails — the mechanism behind Figure 7's ">25%"
    /// tail-latency growth.
    pub post_spike_prob: f64,
    /// Duration of one such stall.
    pub post_spike_cost: SimDuration,
    /// Client-side per-op overhead (request build + reply parse).
    pub client_op: SimDuration,
    /// Nic-KV cost to answer a GET from the SoC hot-key cache (hash
    /// lookup + refcount bump + reply post, reference-core time; the
    /// SmartNIC pool scales it by the ARM speed factor). Only charged
    /// when `hot_cache_bytes > 0`.
    pub nic_cache_hit: SimDuration,
    /// Nic-KV cost to proxy one command between a client and the host
    /// master (cookie bookkeeping + re-post each way). Charged on the
    /// forward and on the reply relay. Only on the cache-on path.
    pub nic_fwd: SimDuration,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cmd_base: SimDuration::from_nanos(2_500),
            cmd_per_kib: SimDuration::from_nanos(220),
            apply_base: SimDuration::from_nanos(1_100),
            persist_per_key: SimDuration::from_nanos(800),
            load_per_key: SimDuration::from_nanos(700),
            nic_fanout_base: SimDuration::from_nanos(120),
            nic_per_slave: SimDuration::from_nanos(100),
            jitter: 0.12,
            post_spike_prob: 0.006,
            post_spike_cost: SimDuration::from_micros(6),
            client_op: SimDuration::from_nanos(2_000),
            nic_cache_hit: SimDuration::from_nanos(600),
            nic_fwd: SimDuration::from_nanos(250),
        }
    }
}

/// Full configuration for one SKV/baseline cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// System variant.
    pub mode: Mode,
    /// Number of slave servers.
    pub num_slaves: usize,
    /// Replication threads on the SmartNIC (paper §III-C `thread-num`).
    /// Clamped to `min(nic cores, slaves)`; 1 disables multi-threading
    /// (the paper's default).
    pub thread_num: usize,
    /// Minimum available slaves before writes are rejected (`min-slaves`).
    pub min_slaves: usize,
    /// Probe timeout before a node is declared failed (`waiting-time`).
    pub waiting_time: SimDuration,
    /// Interval between Nic-KV probe rounds (paper: 1 second).
    // skv-lint: allow(config-drift) -- paper-fixed cadence (§III-D, 1 s); the probe *timeout* is the swept knob (failparams ablation)
    pub probe_interval: SimDuration,
    /// How often slaves report replication progress to the master.
    // skv-lint: allow(config-drift) -- Redis repl-ping cadence, held at the default; sweeping it changes nothing the paper measures
    pub progress_interval: SimDuration,
    /// Replication backlog capacity in bytes.
    // skv-lint: allow(config-drift) -- sized so partial resync always works in-window; exercised by the partial-sync chaos tests, not an ablation arm
    pub backlog_size: usize,
    /// Per-connection receive-ring size in bytes.
    // skv-lint: allow(config-drift) -- must exceed the largest burst in flight; ring-wrap is covered by channel unit tests, not a measured trade-off
    pub ring_size: usize,
    /// Maximum replication lag (bytes) before the master returns errors
    /// (paper §III-C: "if the progress is too slow … return an error").
    // skv-lint: allow(config-drift) -- guardrail that never trips in healthy runs; the min-slaves rejection path is the measured variant (failparams)
    pub max_slave_lag: u64,
    /// Base delay for reconnect backoff after a failed dial; doubles per
    /// attempt up to [`ClusterConfig::reconnect_max_delay`].
    pub reconnect_base: SimDuration,
    /// Cap on the doubled reconnect delay. Under a long partition the
    /// schedule is `base, 2·base, 4·base, …` clamped here, so redial
    /// pressure stays bounded without the doubling running away. See
    /// [`ClusterConfig::reconnect_delay`].
    pub reconnect_max_delay: SimDuration,
    /// Attempts before a single connect intent is abandoned (periodic
    /// re-seeding from the cron loop takes over from there).
    pub reconnect_max_attempts: u32,
    /// Silence from the coordination upstream (Nic-KV probes, in SKV mode)
    /// before a node declares the channel dead: the master falls back to
    /// host-driven fan-out, a slave tears down and re-syncs.
    // skv-lint: allow(config-drift) -- liveness watchdog tied to probe_interval (2.5 probe periods); chaos tests drive it, latency/throughput do not see it
    pub upstream_silence: SimDuration,
    /// A client abandons a connection when no reply arrives for this long,
    /// tears it down, reconnects, and refills its pipeline.
    pub client_retry_timeout: SimDuration,
    /// Batch the replication fan-out into linked-WR post lists: one
    /// doorbell carrying N frame-refcount-bump WRs per replicated write
    /// instead of N separate `post_send` calls. Applies to both fan-out
    /// sites (Nic-KV offload and the master's host fallback / RDMA-Redis
    /// baseline). On by default — the batched arm has soaked, its digests
    /// are deterministic, and it is how real verbs deployments post
    /// fan-out. Set to `false` to reproduce the historical serial-post
    /// schedule.
    pub batch_wr_posts: bool,
    /// Maximum work completions drained per `CqNotify` event. A burst
    /// larger than the budget is rescheduled as a continuation after the
    /// drain's CPU cost, so one giant burst cannot monopolize an
    /// event-loop turn — timers and other messages interleave. This is
    /// what lets the slow Nic-KV ARM cores back-pressure realistically
    /// under fan-in; see [`crate::cqdrain`].
    pub cq_poll_budget: usize,
    /// Which replication protocol the cluster runs (see
    /// [`crate::replmode`]). `Async` reproduces the paper's stream
    /// bit-for-bit; `Quorum` and `Chain` defer client replies until the
    /// NIC commits the covering offset.
    pub repl_mode: ReplModeKind,
    /// Number of keyspace shards per server (Redis-Cluster-style hash
    /// slots, CRC16 → 16384 slots → `num_shards` contiguous ranges).
    /// Each shard owns a slice of the store, a dedicated simulated core,
    /// and its own CQ; cross-shard commands (MSET/MGET/DEL spanning
    /// slots) pay an inter-shard hop. 1 (the default) reproduces the
    /// historical single-loop schedule bit-for-bit.
    pub num_shards: usize,
    /// Bounded in-flight window for the deferred modes: how many
    /// replicated segments the NIC tracks concurrently before queueing
    /// further launches behind commits. Ignored by `Async`.
    // skv-lint: allow(config-drift) -- deep enough that the replmode ablation never queues behind it; a sweep would measure the queue, not the protocol
    pub repl_window: usize,
    /// Byte budget for the SoC-resident hot-key GET cache on the
    /// Nic-KV (see [`crate::hotcache`]). 0 (the default) disables the
    /// cache entirely: clients dial the host master directly and every
    /// schedule stays bit-identical to the cache-less baseline. Nonzero
    /// (SKV mode only) routes clients through the NIC, which answers
    /// hot GETs from SoC memory and proxies everything else to the
    /// host, invalidating cached entries off the replication stream.
    pub hot_cache_bytes: usize,
    /// Admission policy for the hot-key cache: `"lru"` (admit always,
    /// evict by recency) or `"tinylfu"` (Count-Min-Sketch frequency
    /// gate against the eviction victim). Validated by
    /// [`ClusterConfig::validate`]; ignored when `hot_cache_bytes` is 0.
    pub hot_cache_policy: String,
    /// Largest value (bytes) the cache will ever be asked to hold; the
    /// budget must fit at least one entry of this size plus overhead,
    /// or admission could never succeed. Defaults to 16 KiB.
    pub hot_cache_max_value: usize,
    /// Record per-commit ack sets on the NIC (`NicKv::committed_acks`).
    /// Test-only instrumentation for the quorum-intersection proptest;
    /// off by default to keep long runs lean.
    // skv-lint: allow(config-drift) -- test-only instrumentation flag, never a performance knob
    pub record_commits: bool,
    /// Record every bench client's operations (invocation/response
    /// windows, stamped write values, observed read values — including
    /// NIC-cache-served GETs and forwarded FWD_CMD replies) into a
    /// shared history for the multi-writer linearizability checker
    /// (`histcheck::check_linearizable`). Off by default: recording
    /// changes the written *values* (stamps replace the `xxxx…` filler),
    /// so the pinned workload trace digests only hold with it off.
    pub record_history: bool,
    /// Cross-mode failover: allow the NIC to demote a quorum cluster to
    /// the async stream when fewer than a write quorum of slaves are
    /// reachable, and re-promote once a quorum heals. The demotion
    /// instant is recorded (`NicKv::mode_changes`) as the declared
    /// degradation point: the history before it must still linearize,
    /// after it only async's eventual convergence is promised. Off by
    /// default — quorum stalls (and sheds load via `min-slaves`-style
    /// timeouts) rather than silently weakening its guarantee.
    pub mode_failover: bool,
    /// CPU cost model.
    pub costs: CostParams,
    /// Fabric calibration.
    pub net: NetParams,
    /// Machine shapes (cores, speeds).
    pub machines: MachineParams,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            mode: Mode::Skv,
            num_slaves: 3,
            thread_num: 1,
            min_slaves: 0,
            waiting_time: SimDuration::from_millis(1500),
            probe_interval: SimDuration::from_secs(1),
            progress_interval: SimDuration::from_millis(100),
            backlog_size: 1 << 20,
            ring_size: 1 << 20,
            max_slave_lag: 256 << 20,
            reconnect_base: SimDuration::from_millis(10),
            reconnect_max_delay: SimDuration::from_millis(640),
            reconnect_max_attempts: 8,
            upstream_silence: SimDuration::from_millis(2_500),
            client_retry_timeout: SimDuration::from_millis(250),
            batch_wr_posts: true,
            cq_poll_budget: 64,
            repl_mode: ReplModeKind::Async,
            num_shards: 1,
            hot_cache_bytes: 0,
            hot_cache_policy: "lru".into(),
            hot_cache_max_value: 16 << 10,
            repl_window: 256,
            record_commits: false,
            record_history: false,
            mode_failover: false,
            costs: CostParams::default(),
            net: NetParams::default(),
            machines: MachineParams::default(),
        }
    }
}

impl ClusterConfig {
    /// A config for the given mode with everything else default.
    pub fn for_mode(mode: Mode) -> Self {
        ClusterConfig {
            mode,
            ..Default::default()
        }
    }

    /// Effective number of NIC replication threads (paper §III-C: "the
    /// actual number of threads used for replication cannot be greater
    /// than the minimum value of the number of SmartNIC cores and slave
    /// nodes").
    pub fn effective_nic_threads(&self) -> usize {
        self.thread_num
            .max(1)
            .min(self.machines.nic_cores)
            .min(self.num_slaves.max(1))
    }

    /// Server-side reconnect backoff for the `attempts`-th consecutive
    /// failure (1-based): `reconnect_base · 2^(attempts−1)` clamped to
    /// [`ClusterConfig::reconnect_max_delay`]. The cap never drops below
    /// the base, so a misconfigured `reconnect_max_delay <
    /// reconnect_base` degrades to constant-`base` retries instead of a
    /// zero-delay dial storm.
    pub fn reconnect_delay(&self, attempts: u32) -> SimDuration {
        let shift = attempts.saturating_sub(1).min(20);
        let delay = self.reconnect_base.mul_f64((1u64 << shift) as f64);
        let cap = self.reconnect_max_delay.max(self.reconnect_base);
        delay.min(cap)
    }

    /// Validate the shard/core/thread interplay before building a
    /// cluster. The NIC-thread clamp in
    /// [`ClusterConfig::effective_nic_threads`] silently shrinks an
    /// oversized `thread_num` — fine for the paper's single-loop host,
    /// but once the host engine is itself sharded a silently-clamped NIC
    /// pool hides a real misconfiguration: the operator sized the NIC
    /// for a host parallelism the machine cannot deliver. Sharded
    /// configs therefore reject instead of clamping.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_shards == 0 {
            return Err("num_shards must be at least 1".into());
        }
        if self.num_shards > crate::protocol::NUM_SLOTS {
            return Err(format!(
                "num_shards {} exceeds the {} hash slots",
                self.num_shards,
                crate::protocol::NUM_SLOTS
            ));
        }
        // Each shard pins a dedicated host core and the background
        // persist/load core rides alongside them.
        if self.num_shards + 1 > self.machines.host_cores {
            return Err(format!(
                "num_shards {} needs {} host cores (one per shard plus the \
                 persist core) but the machine has {}",
                self.num_shards,
                self.num_shards + 1,
                self.machines.host_cores
            ));
        }
        // Single-shard configs keep the historical silent clamp (the
        // threadnum ablation sweeps past the core count on purpose);
        // sharded configs must be explicit about the NIC pool.
        if self.num_shards > 1 && self.thread_num > self.machines.nic_cores {
            return Err(format!(
                "thread_num {} exceeds the {} SmartNIC cores; sharded \
                 configs (num_shards {}) must size the NIC pool explicitly \
                 instead of relying on the clamp",
                self.thread_num, self.machines.nic_cores, self.num_shards
            ));
        }
        // Hot-cache knobs. The policy name is checked even with the
        // cache off so a typo'd sweep config fails at build time, not
        // silently on the first cache-on arm.
        if crate::hotcache::CachePolicyKind::parse(&self.hot_cache_policy).is_none() {
            return Err(format!(
                "unknown hot_cache_policy {:?}; expected one of: lru, tinylfu",
                self.hot_cache_policy
            ));
        }
        if self.hot_cache_bytes > 0 {
            if self.mode != Mode::Skv {
                return Err(format!(
                    "hot_cache_bytes {} requires SKV mode (the cache lives on \
                     the Nic-KV); mode is {}",
                    self.hot_cache_bytes,
                    self.mode.label()
                ));
            }
            let min_entry = self.hot_cache_max_value + crate::hotcache::ENTRY_OVERHEAD;
            if self.hot_cache_bytes < min_entry {
                return Err(format!(
                    "hot_cache_bytes {} cannot fit one max-size entry \
                     (hot_cache_max_value {} + {} overhead = {}); a budget \
                     that admits nothing is a misconfiguration, not a cache",
                    self.hot_cache_bytes,
                    self.hot_cache_max_value,
                    crate::hotcache::ENTRY_OVERHEAD,
                    min_entry
                ));
            }
            // The cache front-end pins a NIC core for GET serving and
            // proxying; a sharded config (already in the explicit-sizing
            // regime above) must leave room for it next to the
            // replication pool.
            if self.num_shards > 1 && self.thread_num + 1 > self.machines.nic_cores {
                return Err(format!(
                    "hot cache with num_shards {} needs a SmartNIC core for \
                     the cache front-end next to the {} replication threads, \
                     but the NIC has only {} cores",
                    self.num_shards, self.thread_num, self.machines.nic_cores
                ));
            }
        }
        Ok(())
    }

    /// Is the SoC hot-key cache active in this config?
    pub fn hot_cache_enabled(&self) -> bool {
        self.hot_cache_bytes > 0 && self.mode == Mode::Skv
    }

    /// The parsed cache admission policy. Panics on an unvalidated
    /// unknown name — call [`ClusterConfig::validate`] first (the
    /// cluster builder does).
    pub fn hot_cache_policy_kind(&self) -> crate::hotcache::CachePolicyKind {
        crate::hotcache::CachePolicyKind::parse(&self.hot_cache_policy)
            .unwrap_or(crate::hotcache::CachePolicyKind::Lru)
    }

    /// Client-side dial backoff: the same capped doubling, additionally
    /// clamped to `client_retry_timeout`. The client's watchdog abandons
    /// a silent connection after `client_retry_timeout`, so letting the
    /// dial backoff exceed it would leave the client idle longer than it
    /// is ever willing to wait on a live connection — this makes the
    /// interaction between the two knobs explicit.
    pub fn client_dial_delay(&self, attempts: u32) -> SimDuration {
        self.reconnect_delay(attempts)
            .min(self.client_retry_timeout)
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny literals
mod tests {
    use super::*;

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::TcpRedis.label(), "Redis");
        assert_eq!(Mode::RdmaRedis.label(), "RDMA-Redis");
        assert_eq!(Mode::Skv.label(), "SKV");
        assert!(!Mode::TcpRedis.uses_rdma());
        assert!(Mode::Skv.uses_rdma());
    }

    #[test]
    fn reconnect_backoff_doubles_then_caps() {
        let cfg = ClusterConfig::default();
        // 10, 20, 40, 80, 160, 320, 640, then pinned at the 640ms cap.
        let expect = [10u64, 20, 40, 80, 160, 320, 640, 640, 640, 640];
        for (i, &ms) in expect.iter().enumerate() {
            assert_eq!(
                cfg.reconnect_delay(i as u32 + 1),
                SimDuration::from_millis(ms),
                "attempt {}",
                i + 1
            );
        }
        // Huge attempt counts must not overflow the shift.
        assert_eq!(cfg.reconnect_delay(1_000), cfg.reconnect_max_delay);
        // attempts = 0 is treated like the first attempt.
        assert_eq!(cfg.reconnect_delay(0), cfg.reconnect_base);
    }

    #[test]
    fn reconnect_cap_never_below_base() {
        let cfg = ClusterConfig {
            reconnect_base: SimDuration::from_millis(50),
            reconnect_max_delay: SimDuration::from_millis(10),
            ..Default::default()
        };
        for attempts in 1..10 {
            assert_eq!(cfg.reconnect_delay(attempts), cfg.reconnect_base);
        }
    }

    #[test]
    fn client_dial_delay_clamped_to_retry_timeout() {
        let cfg = ClusterConfig {
            reconnect_base: SimDuration::from_millis(10),
            reconnect_max_delay: SimDuration::from_millis(640),
            client_retry_timeout: SimDuration::from_millis(100),
            ..Default::default()
        };
        assert_eq!(cfg.client_dial_delay(1), SimDuration::from_millis(10));
        assert_eq!(cfg.client_dial_delay(4), SimDuration::from_millis(80));
        // From the 5th failure on, the dial backoff is pinned to the
        // client's own abandon timeout, not the server cap.
        for attempts in 5..12 {
            assert_eq!(
                cfg.client_dial_delay(attempts),
                cfg.client_retry_timeout,
                "attempt {attempts}"
            );
        }
    }

    #[test]
    fn validate_accepts_defaults_and_sane_shard_counts() {
        assert!(ClusterConfig::default().validate().is_ok());
        for shards in [1usize, 2, 4, 8] {
            let cfg = ClusterConfig {
                num_shards: shards,
                ..Default::default()
            };
            assert!(cfg.validate().is_ok(), "num_shards {shards} rejected");
        }
    }

    #[test]
    fn validate_rejects_zero_and_oversized_shard_counts() {
        let cfg = ClusterConfig {
            num_shards: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "zero shards must be rejected");
        let cfg = ClusterConfig {
            num_shards: crate::protocol::NUM_SLOTS + 1,
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "more shards than slots");
    }

    #[test]
    fn validate_requires_a_core_per_shard_plus_persist() {
        // 32 host cores by default: 31 shards + persist core fits,
        // 32 shards would leave no room for the background core.
        let ok = ClusterConfig {
            num_shards: 31,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        let bad = ClusterConfig {
            num_shards: 32,
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("host cores"), "unexpected error: {err}");
    }

    #[test]
    fn validate_rejects_overclamped_nic_threads_when_sharded() {
        // The legacy single-shard path still clamps silently (the
        // threadnum ablation sweeps thread_num past the core count),
        // but a sharded config with the same oversize must error.
        let legacy = ClusterConfig {
            thread_num: 16,
            num_shards: 1,
            ..Default::default()
        };
        assert!(legacy.validate().is_ok(), "legacy clamp must survive");
        assert_eq!(legacy.effective_nic_threads(), 3, "clamped to slaves");

        let sharded = ClusterConfig {
            thread_num: 16,
            num_shards: 4,
            ..Default::default()
        };
        let err = sharded.validate().unwrap_err();
        assert!(err.contains("SmartNIC cores"), "unexpected error: {err}");

        // An explicit, in-range NIC pool is fine alongside shards.
        let sized = ClusterConfig {
            thread_num: 8,
            num_shards: 4,
            ..Default::default()
        };
        assert!(sized.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unknown_cache_policy() {
        let cfg = ClusterConfig {
            hot_cache_policy: "arc".into(),
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("hot_cache_policy"), "unexpected error: {err}");
        for policy in ["lru", "tinylfu"] {
            let cfg = ClusterConfig {
                hot_cache_policy: policy.into(),
                hot_cache_bytes: 1 << 20,
                ..Default::default()
            };
            assert!(cfg.validate().is_ok(), "policy {policy} rejected");
        }
    }

    #[test]
    fn validate_rejects_budget_below_one_max_entry() {
        let cfg = ClusterConfig {
            hot_cache_bytes: 1 << 10,
            hot_cache_max_value: 16 << 10,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("max-size entry"), "unexpected error: {err}");
        // Exactly one entry is the floor.
        let cfg = ClusterConfig {
            hot_cache_bytes: (16 << 10) + crate::hotcache::ENTRY_OVERHEAD,
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_cache_outside_skv_mode() {
        for mode in [Mode::TcpRedis, Mode::RdmaRedis] {
            let cfg = ClusterConfig {
                mode,
                hot_cache_bytes: 1 << 20,
                ..Default::default()
            };
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("SKV mode"), "unexpected error: {err}");
        }
        let cfg = ClusterConfig {
            hot_cache_bytes: 1 << 20,
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
        assert!(cfg.hot_cache_enabled());
        assert!(!ClusterConfig::default().hot_cache_enabled());
    }

    #[test]
    fn validate_cache_shard_interplay_reserves_a_nic_core() {
        // 8 NIC cores: a sharded cache-on config may use at most 7
        // replication threads so the cache front-end gets a core.
        let full = ClusterConfig {
            hot_cache_bytes: 1 << 20,
            num_shards: 4,
            thread_num: 8,
            ..Default::default()
        };
        let err = full.validate().unwrap_err();
        assert!(err.contains("cache front-end"), "unexpected error: {err}");
        let sized = ClusterConfig {
            hot_cache_bytes: 1 << 20,
            num_shards: 4,
            thread_num: 7,
            ..Default::default()
        };
        assert!(sized.validate().is_ok());
        // Cache-off sharded configs keep the historical bound.
        let off = ClusterConfig {
            num_shards: 4,
            thread_num: 8,
            ..Default::default()
        };
        assert!(off.validate().is_ok());
    }

    #[test]
    fn nic_threads_clamped() {
        let mut cfg = ClusterConfig {
            thread_num: 16,
            num_slaves: 3,
            ..Default::default()
        };
        assert_eq!(cfg.effective_nic_threads(), 3, "min(cores=8, slaves=3)");
        cfg.num_slaves = 20;
        assert_eq!(cfg.effective_nic_threads(), 8, "min(cores=8, slaves=20)");
        cfg.thread_num = 0;
        assert_eq!(cfg.effective_nic_threads(), 1, "at least one");
    }
}
