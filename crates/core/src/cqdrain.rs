//! Shared completion-queue drain helpers.
//!
//! Every event-driven actor in the system (server, Nic-KV, bench client)
//! used to drain its CQ with a private unbounded loop — poll 64, repeat
//! until empty — which made a large completion burst monopolize one
//! event-loop turn and charged the polling CPU nothing. These helpers
//! give all three call sites one budgeted, *costed* drain:
//!
//! * at most `budget` work completions are polled per `CqNotify` event;
//! * the drain's CPU cost — `cq_poll_cpu` per poll call plus
//!   `wc_handle_cpu` per WC ([`skv_netsim::NetParams`]) — is returned to
//!   the caller, who charges it to its own core pool (the crate
//!   convention: the fabric and channels never charge CPU, the owning
//!   actor accounts for its work);
//! * when the budget was exhausted with completions still queued, the
//!   caller schedules a continuation `CqNotify` to itself *after* the
//!   charged cost, so timers and other messages interleave with the
//!   drain — this is what lets a slow Nic-KV ARM core back-pressure
//!   realistically instead of absorbing any burst in zero sim time;
//! * otherwise the helper re-arms the CQ before returning.

use skv_netsim::{CqId, Net, Wc};
use skv_simcore::{Context, SimDuration};

/// What one budgeted drain pass did; see [`drain_budgeted`].
#[derive(Debug, Clone, Copy)]
pub struct DrainOutcome {
    /// Work completions polled and dispatched this pass.
    pub polled: usize,
    /// True when the budget ran out with completions still queued. The CQ
    /// was *not* re-armed; the caller must schedule a continuation
    /// `CqNotify` to itself at the time its core finishes `cpu_cost`.
    pub more: bool,
    /// Reference-core CPU cost of this pass: one `cq_poll_cpu` plus
    /// `wc_handle_cpu` per polled WC. The caller charges this to its own
    /// core pool (or documents why it has none to charge).
    pub cpu_cost: SimDuration,
}

/// Drain up to `budget` completions from `cq`, dispatching each through
/// `on_wc`, and report what happened.
///
/// When the queue is exhausted within budget the CQ is re-armed here
/// (atomically with the poll in simulation time, so no completion can
/// slip between poll and arm). When the budget runs out first, the CQ is
/// left un-armed and [`DrainOutcome::more`] tells the caller to schedule
/// its continuation — re-arming in that state would fire a fresh notify
/// immediately and defeat the budget.
pub fn drain_budgeted(
    net: &Net,
    ctx: &mut Context<'_>,
    cq: CqId,
    budget: usize,
    mut on_wc: impl FnMut(&mut Context<'_>, Wc),
) -> DrainOutcome {
    let budget = budget.max(1);
    let params = net.params();
    let wcs = net.poll_cq(cq, budget);
    let polled = wcs.len();
    let cpu_cost = params.cq_poll_cpu + params.wc_handle_cpu.mul_f64(polled as f64);
    for wc in wcs {
        on_wc(ctx, wc);
    }
    let more = polled == budget && net.cq_depth(cq) > 0;
    if !more {
        net.req_notify_cq(ctx, cq);
    }
    DrainOutcome {
        polled,
        more,
        cpu_cost,
    }
}

/// Drain a CQ completely during connection recovery, routing every stale
/// completion through `on_wc`, then re-arm. Returns how many were
/// drained.
///
/// Recovery must not discard WCs blindly: receive completions still
/// carry the `wr_id` of a consumed receive slot, and only the channel's
/// `on_wc` replenishes it — a silent `while !poll().is_empty() {}` leaks
/// receive credits on every surviving connection. This is a rare
/// control-path event, so it is deliberately unbudgeted and uncharged.
pub fn recover_drain(
    net: &Net,
    ctx: &mut Context<'_>,
    cq: CqId,
    mut on_wc: impl FnMut(&mut Context<'_>, Wc),
) -> usize {
    let mut drained = 0;
    loop {
        let wcs = net.poll_cq(cq, 64);
        if wcs.is_empty() {
            break;
        }
        drained += wcs.len();
        for wc in wcs {
            on_wc(ctx, wc);
        }
    }
    net.req_notify_cq(ctx, cq);
    drained
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny literals
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use skv_netsim::{Net, NetEvent, NetParams, QpId, SendOp, SendWr, SocketAddr, Topology};
    use skv_simcore::{CorePool, FnActor, SimTime, Simulation};

    /// Periodic heartbeat message for the starvation test.
    struct Tick;

    /// Arms the receiver's CQ once the whole burst has landed, so the
    /// drain machinery faces a deep queue rather than tracking arrivals.
    struct StartDrain;

    struct DrainLog {
        /// `(sim time, polled)` per drain pass.
        passes: Vec<(SimTime, usize)>,
        /// Sim times at which the tick timer fired.
        ticks: Vec<SimTime>,
    }

    /// Raw-verbs world: a receiver that drains with `drain_budgeted`,
    /// charging a single-core pool, while a tick timer competes for the
    /// same event loop. Returns the log after `n_wrs` tiny writes land.
    fn run_burst(n_wrs: usize, budget: usize, tick_every: SimDuration) -> DrainLog {
        let mut sim = Simulation::new(5);
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        let net = Net::install(&mut sim, topo, NetParams::default());
        let mr = net.register_mr(b, 1 << 20);
        let addr = SocketAddr::new(b, 6379);

        let log = Rc::new(RefCell::new(DrainLog {
            passes: Vec::new(),
            ticks: Vec::new(),
        }));
        let client_qp: Rc<RefCell<Option<QpId>>> = Rc::default();

        let n = net.clone();
        let l = log.clone();
        let cpu = RefCell::new(CorePool::new(1, 1.0));
        let server_cq: Rc<RefCell<Option<skv_netsim::CqId>>> = Rc::default();
        let scq = server_cq.clone();
        let server = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let msg = match msg.downcast::<Tick>() {
                Ok(_) => {
                    l.borrow_mut().ticks.push(ctx.now());
                    // Self-limiting so the simulation can quiesce: the
                    // burst drains within a few ms of sim time.
                    if ctx.now() < SimTime::ZERO + SimDuration::from_millis(20) {
                        ctx.timer(tick_every, Tick);
                    }
                    return;
                }
                Err(msg) => msg,
            };
            let msg = match msg.downcast::<StartDrain>() {
                Ok(_) => {
                    // The burst is fully queued: arming now fires one
                    // notify into a deep CQ.
                    let cq = scq.borrow().expect("connected");
                    n.req_notify_cq(ctx, cq);
                    return;
                }
                Err(msg) => msg,
            };
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmConnectRequest { req, .. } => {
                    let cq = n.create_cq(ctx.id());
                    let qp = n.rdma_accept(ctx, req, cq).expect("fresh CM request");
                    for i in 0..n_wrs {
                        n.post_recv(qp, i as u64).unwrap();
                    }
                    *scq.borrow_mut() = Some(cq);
                    ctx.timer(SimDuration::from_millis(5), StartDrain);
                    ctx.timer(tick_every, Tick);
                }
                NetEvent::CqNotify { cq } => {
                    let out = drain_budgeted(&n, ctx, cq, budget, |_ctx, _wc| {});
                    l.borrow_mut().passes.push((ctx.now(), out.polled));
                    let done = cpu.borrow_mut().run_on(0, ctx.now(), out.cpu_cost).finished;
                    if out.more {
                        ctx.timer_at(done, NetEvent::CqNotify { cq });
                    }
                }
                _ => {}
            }
        })));
        net.rdma_listen(addr, server);

        let n = net.clone();
        let cqp = client_qp.clone();
        let client = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmEstablished { qp, .. } => {
                    *cqp.borrow_mut() = Some(qp);
                    // The whole burst in one turn: the receiver must not
                    // absorb it in one event either.
                    for i in 0..n_wrs {
                        n.post_send(
                            ctx,
                            qp,
                            SendWr {
                                wr_id: i as u64,
                                op: SendOp::WriteImm {
                                    remote_mr: mr,
                                    remote_offset: 0,
                                    imm: i as u32,
                                },
                                data: vec![0u8; 8].into(),
                            },
                        )
                        .unwrap();
                    }
                }
                NetEvent::CqNotify { cq } => {
                    n.poll_cq(cq, usize::MAX);
                    n.req_notify_cq(ctx, cq);
                }
                _ => {}
            }
        })));
        let n = net.clone();
        let starter = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            let cq = n.create_cq(client);
            n.req_notify_cq(ctx, cq);
            n.rdma_connect(ctx, a, client, cq, addr);
        })));
        sim.schedule(SimTime::ZERO, starter, ());
        sim.run_to_completion();
        let out = log.borrow();
        DrainLog {
            passes: out.passes.clone(),
            ticks: out.ticks.clone(),
        }
    }

    #[test]
    fn burst_respects_budget_and_loses_nothing() {
        let budget = 16;
        let log = run_burst(10_000, budget, SimDuration::from_micros(50));
        let total: usize = log.passes.iter().map(|(_, p)| p).sum();
        assert_eq!(total, 10_000, "budgeted drain must not drop completions");
        assert!(
            log.passes.iter().all(|(_, p)| *p <= budget),
            "no pass may exceed the poll budget"
        );
        // 10k WCs at 16/pass is ~625 passes: the burst really was spread
        // over many event-loop turns, not absorbed in one.
        assert!(log.passes.len() >= 10_000 / budget);
    }

    #[test]
    fn burst_does_not_starve_timer_events() {
        // Regression: with unbounded drains a 10k-WC burst ran inside a
        // single event and the tick timer saw none of it. Budgeted drains
        // charge CPU per pass, so sim time advances and ticks interleave.
        let log = run_burst(10_000, 16, SimDuration::from_micros(50));
        let first = log.passes.first().expect("drained something").0;
        let last = log.passes.last().expect("drained something").0;
        assert!(
            last - first >= SimDuration::from_micros(200),
            "burst must take real sim time to drain"
        );
        let interleaved = log
            .ticks
            .iter()
            .filter(|t| **t > first && **t < last)
            .count();
        assert!(
            interleaved >= 4,
            "tick timer starved: only {interleaved} ticks fired during the \
             drain window {first:?}..{last:?}"
        );
    }

    #[test]
    fn exhausted_queue_rearms_for_the_next_burst() {
        // Two bursts with the same world: the helper's re-arm at the end
        // of burst one is what lets burst two notify at all.
        let log = run_burst(40, 16, SimDuration::from_micros(50));
        let total: usize = log.passes.iter().map(|(_, p)| p).sum();
        assert_eq!(total, 40);
        // 40 WCs at budget 16: passes of 16, 16, 8 — the final sub-budget
        // pass re-armed (and a fresh notify would find an empty queue).
        assert_eq!(log.passes.last().unwrap().1, 8);
    }
}
