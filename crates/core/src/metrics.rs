//! Run-wide measurement: latency histograms, completion time series, and
//! the report type every experiment prints.

use std::cell::RefCell;
use std::rc::Rc;

use skv_simcore::stats::{Counters, Histogram, SeriesPoint, TimeSeries};
use skv_simcore::{SimDuration, SimTime};

/// Canonical counter catalog.
///
/// `skv-analyze`'s `counter-drift` rule cross-checks the workspace against
/// these lists: every `stat_*` field and every `"rdma.*"` fabric counter
/// must appear here, and every entry here must still exist in the code —
/// adding a counter without exporting it, or deleting one and leaving a
/// stale name behind, fails the build's analysis gate. The runtime export
/// is [`Cluster::counters_snapshot`](crate::cluster::Cluster::counters_snapshot),
/// which dumps all of them keyed by subsystem.
pub mod catalog {
    /// Host-KV server counters (`server.rs`), summed over master + slaves.
    pub const SERVER_STATS: &[&str] = &[
        "stat_commands",
        "stat_rejected",
        "stat_applied_bytes",
        "stat_full_syncs",
        "stat_partial_syncs",
        "stat_reconnects",
        "stat_conn_errors",
        "stat_degradations",
        "stat_doorbells",
        "stat_wrs_posted",
        "stat_deferred_replies",
        "stat_released_replies",
        "stat_mode_changes",
    ];
    /// Nic-KV fan-out and replication-mode counters (`nickv.rs`).
    pub const NIC_STATS: &[&str] = &[
        "stat_fanout_msgs",
        "stat_fanout_sends",
        "stat_doorbells",
        "stat_wrs_posted",
        "stat_probes",
        "stat_failovers",
        "stat_commits",
        "stat_retransmits",
        "stat_chain_repairs",
        "stat_chain_rejoins",
        "stat_mode_changes",
        "stat_fwd_stale_drops",
    ];
    /// Bench-client counters (`client.rs`), summed over all clients.
    pub const CLIENT_STATS: &[&str] = &[
        "stat_issued",
        "stat_replies",
        "stat_reconnects",
        "stat_dial_failures",
    ];
    /// Storage-engine counters (`skv-store`'s `Db`), summed over engines.
    pub const STORE_STATS: &[&str] = &["stat_expired", "stat_hits", "stat_misses"];
    /// Sharded-engine counters (`shard.rs` + the sharded `server.rs`
    /// paths), kept under these exact names: commands executed per shard
    /// (summed), cross-shard fragment handoffs, the deepest slave
    /// parse→apply ring occupancy, and the NIC's per-shard replication
    /// ingress. `shard.ops` counts at any shard count; the rest stay zero
    /// when `num_shards = 1`.
    pub const SHARD_COUNTERS: &[&str] = &[
        "shard.cross_msgs",
        "shard.nic_ingress",
        "shard.ops",
        "shard.queue_depth",
    ];
    /// NIC-resident hot-key GET cache counters (`hotcache.rs`, surfaced
    /// through `nickv.rs`): request outcomes (`cache.hits` served from
    /// the SoC, `cache.misses` forwarded to the host), admission-plane
    /// decisions (`cache.admits`, `cache.evicts`), invalidations applied
    /// off the replication stream, and the resident byte footprint at
    /// run end. All stay zero when `hot_cache_bytes = 0`.
    pub const CACHE_COUNTERS: &[&str] = &[
        "cache.admits",
        "cache.bytes",
        "cache.evicts",
        "cache.hits",
        "cache.invalidations",
        "cache.misses",
    ];
    /// History-recorder counters (`histcheck.rs` event logs produced by
    /// the bench clients under `ClusterConfig::record_history`): total
    /// recorded ops, the read/write split, and reads abandoned by a
    /// dial-away (`hist.aborts` — excluded from the linearizability
    /// search). All stay zero when recording is off.
    pub const HIST_COUNTERS: &[&str] = &[
        "hist.aborts",
        "hist.ops",
        "hist.reads",
        "hist.writes",
    ];
    /// Fabric counters kept by `skv-netsim` under these exact names.
    pub const RDMA_COUNTERS: &[&str] = &[
        "rdma.access_errors",
        "rdma.bytes",
        "rdma.connections",
        "rdma.cq_notifies",
        "rdma.doorbells",
        "rdma.drops",
        "rdma.qp_errors",
        "rdma.reads",
        "rdma.rnr",
        "rdma.sends",
        "rdma.wcs_polled",
        "rdma.write_imm",
        "rdma.writes",
        "rdma.wrs_posted",
    ];
}

/// Shared measurement sink written by client actors.
pub struct MetricsHub {
    /// Latency of SET (and other write) operations.
    pub set_latency: Histogram,
    /// Latency of GET (and other read) operations.
    pub get_latency: Histogram,
    /// All operations together.
    pub all_latency: Histogram,
    /// Completions bucketed over time (for throughput-vs-time plots).
    pub completions: TimeSeries,
    /// Operations that completed inside the measurement window.
    pub ops: u64,
    /// Error replies observed (e.g. `min-slaves` rejections).
    pub errors: u64,
    /// Robustness events across the whole run (client reconnects, server
    /// degradations, resyncs — see the `core::server`/`core::client`
    /// counter names).
    pub chaos: Counters,
    /// Start of the measurement window.
    pub measure_from: SimTime,
    /// End of the measurement window.
    pub measure_until: SimTime,
}

/// Cheaply cloneable handle to a [`MetricsHub`].
pub type SharedMetrics = Rc<RefCell<MetricsHub>>;

impl MetricsHub {
    /// Create a hub measuring `[from, until]`, with 500 ms series buckets.
    pub fn new(from: SimTime, until: SimTime) -> SharedMetrics {
        Rc::new(RefCell::new(MetricsHub {
            set_latency: Histogram::new(),
            get_latency: Histogram::new(),
            all_latency: Histogram::new(),
            completions: TimeSeries::new(SimDuration::from_millis(500)),
            ops: 0,
            errors: 0,
            chaos: Counters::new(),
            measure_from: from,
            measure_until: until,
        }))
    }

    /// Record one completed operation.
    pub fn record(&mut self, at: SimTime, latency: SimDuration, is_write: bool, is_error: bool) {
        // The time series covers the whole run (Figure 14 needs it).
        self.completions.record(at);
        if at < self.measure_from || at > self.measure_until {
            return;
        }
        self.ops += 1;
        if is_error {
            self.errors += 1;
            return;
        }
        self.all_latency.record_duration(latency);
        if is_write {
            self.set_latency.record_duration(latency);
        } else {
            self.get_latency.record_duration(latency);
        }
    }
}

/// Summary of one experiment run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which system produced it ("SKV", "RDMA-Redis", "Redis").
    pub label: String,
    /// Operations completed inside the measurement window.
    pub ops: u64,
    /// Error replies inside the window.
    pub errors: u64,
    /// Throughput in kops/s over the window.
    pub throughput_kops: f64,
    /// Mean latency, microseconds.
    pub avg_latency_us: f64,
    /// Median latency, microseconds.
    pub p50_latency_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_latency_us: f64,
    /// 99th percentile ("tail") latency, microseconds.
    pub p99_latency_us: f64,
    /// Throughput over time (500 ms buckets) across the whole run.
    pub series: Vec<SeriesPoint>,
    /// Robustness events observed during the run (reconnects, degradations,
    /// resyncs).
    pub chaos: Counters,
}

impl RunReport {
    /// Build a report from a hub after the simulation finished.
    pub fn from_hub(label: impl Into<String>, hub: &MetricsHub) -> RunReport {
        let window = hub.measure_until - hub.measure_from;
        let secs = window.as_secs_f64().max(f64::MIN_POSITIVE);
        let h = &hub.all_latency;
        RunReport {
            label: label.into(),
            ops: hub.ops,
            errors: hub.errors,
            throughput_kops: hub.ops as f64 / secs / 1000.0,
            avg_latency_us: h.mean() / 1000.0,
            p50_latency_us: h.p50() as f64 / 1000.0,
            p95_latency_us: h.p95() as f64 / 1000.0,
            p99_latency_us: h.p99() as f64 / 1000.0,
            series: hub.completions.points(),
            chaos: hub.chaos.clone(),
        }
    }

    /// One fixed-width table row (pairs with [`RunReport::header`]).
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10} {:>8}",
            self.label,
            self.throughput_kops,
            self.avg_latency_us,
            self.p50_latency_us,
            self.p99_latency_us,
            self.ops,
            self.errors
        )
    }

    /// Table header matching [`RunReport::row`].
    pub fn header() -> String {
        format!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "system", "kops/s", "avg(us)", "p50(us)", "p99(us)", "ops", "errors"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_filter_by_window() {
        let hub = MetricsHub::new(SimTime::from_secs(1), SimTime::from_secs(2));
        let mut h = hub.borrow_mut();
        h.record(
            SimTime::from_millis(500),
            SimDuration::from_micros(10),
            true,
            false,
        ); // before window
        h.record(
            SimTime::from_millis(1500),
            SimDuration::from_micros(20),
            true,
            false,
        ); // inside
        h.record(
            SimTime::from_millis(2500),
            SimDuration::from_micros(30),
            false,
            false,
        ); // after
        assert_eq!(h.ops, 1);
        assert_eq!(h.all_latency.count(), 1);
        assert_eq!(h.set_latency.count(), 1);
        assert_eq!(h.get_latency.count(), 0);
        // But the series saw all three.
        assert_eq!(h.completions.total(), 3);
    }

    #[test]
    fn errors_counted_not_timed() {
        let hub = MetricsHub::new(SimTime::ZERO, SimTime::from_secs(10));
        let mut h = hub.borrow_mut();
        h.record(
            SimTime::from_secs(1),
            SimDuration::from_micros(5),
            true,
            true,
        );
        assert_eq!(h.errors, 1);
        assert_eq!(h.ops, 1);
        assert_eq!(h.all_latency.count(), 0);
    }

    #[test]
    fn report_computes_throughput() {
        let hub = MetricsHub::new(SimTime::ZERO, SimTime::from_secs(2));
        {
            let mut h = hub.borrow_mut();
            for i in 0..1000 {
                h.record(
                    SimTime::from_millis(i),
                    SimDuration::from_micros(50),
                    i % 2 == 0,
                    false,
                );
            }
        }
        let r = RunReport::from_hub("SKV", &hub.borrow());
        assert_eq!(r.ops, 1000);
        assert!((r.throughput_kops - 0.5).abs() < 1e-9);
        assert!((r.avg_latency_us - 50.0).abs() < 0.5);
        assert!(!r.row().is_empty());
        assert!(RunReport::header().contains("p99"));
    }
}
